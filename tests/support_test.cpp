// Unit tests for the support module: Result/Status, byte codecs,
// IntervalSet, the monotonic arena, and the deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "support/arena.h"
#include "support/bytes.h"
#include "support/interval.h"
#include "support/rng.h"
#include "support/status.h"

namespace zipr {
namespace {

// ---- Result / Status ----

Result<int> parse_positive(int v) {
  if (v <= 0) return Error::invalid_argument("not positive");
  return v;
}

TEST(Result, HoldsValue) {
  auto r = parse_positive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
}

TEST(Result, HoldsError) {
  auto r = parse_positive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, Error::Kind::kInvalidArgument);
  EXPECT_EQ(r.error().message, "not positive");
}

TEST(Result, ValueOr) {
  EXPECT_EQ(parse_positive(3).value_or(7), 3);
  EXPECT_EQ(parse_positive(-3).value_or(7), 7);
}

TEST(Status, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  Status s = Error::parse("boom");
  ASSERT_FALSE(s.ok());
  EXPECT_STREQ(s.error().kind_name(), "parse");
}

Status passthrough(bool fail) {
  ZIPR_TRY([&]() -> Status {
    if (fail) return Error::decode("inner");
    return Status::success();
  }());
  return Status::success();
}

TEST(Status, TryPropagates) {
  EXPECT_TRUE(passthrough(false).ok());
  auto s = passthrough(true);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().message, "inner");
}

// ---- byte codecs ----

TEST(Bytes, RoundTripAllWidths) {
  Bytes b;
  put_u8(b, 0xab);
  put_u16(b, 0x1234);
  put_u32(b, 0xdeadbeef);
  put_u64(b, 0x1122334455667788ULL);
  put_i8(b, -5);
  put_i32(b, -100000);
  ByteReader r(b);
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x1122334455667788ULL);
  EXPECT_EQ(r.i8().value(), -5);
  EXPECT_EQ(r.i32().value(), -100000);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, LittleEndianLayout) {
  Bytes b;
  put_u32(b, 0x11223344);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x44);
  EXPECT_EQ(b[3], 0x11);
}

TEST(Bytes, ReaderPastEndFails) {
  Bytes b{1, 2};
  ByteReader r(b);
  EXPECT_FALSE(r.u32().ok());
  // A failed read must not consume bytes.
  EXPECT_EQ(r.u16().value(), 0x0201);
}

TEST(Bytes, PatchInPlace) {
  Bytes b(8, 0);
  patch_u32(b, 2, 0xcafebabe);
  EXPECT_EQ(get_u32(b, 2), 0xcafebabeu);
  patch_i8(b, 0, -1);
  EXPECT_EQ(get_i8(b, 0), -1);
}

TEST(Bytes, HexDump) {
  Bytes b{0x68, 0x90, 0x0f};
  EXPECT_EQ(hex_dump(b), "68 90 0f");
  EXPECT_EQ(hex_addr(0x400000), "0x400000");
}

// ---- IntervalSet ----

TEST(IntervalSet, InsertAndQuery) {
  IntervalSet s;
  s.insert(10, 20);
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(19));
  EXPECT_FALSE(s.contains(20));
  EXPECT_FALSE(s.contains(9));
  EXPECT_EQ(s.total_size(), 10u);
}

TEST(IntervalSet, CoalescesAdjacent) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(20, 30);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.contains_range(10, 30));
}

TEST(IntervalSet, CoalescesOverlapping) {
  IntervalSet s;
  s.insert(10, 25);
  s.insert(20, 40);
  s.insert(5, 12);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{5, 40}));
}

TEST(IntervalSet, InsertBridgingManyIntervals) {
  IntervalSet s;
  s.insert(0, 5);
  s.insert(10, 15);
  s.insert(20, 25);
  s.insert(3, 22);  // bridges all three
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{0, 25}));
}

TEST(IntervalSet, EraseSplits) {
  IntervalSet s;
  s.insert(0, 100);
  s.erase(40, 60);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.contains_range(0, 40));
  EXPECT_TRUE(s.contains_range(60, 100));
  EXPECT_FALSE(s.contains(40));
  EXPECT_FALSE(s.contains(59));
}

TEST(IntervalSet, EraseAcrossBoundaries) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.erase(5, 25);
  auto ivs = s.intervals();
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0], (Interval{0, 5}));
  EXPECT_EQ(ivs[1], (Interval{25, 30}));
}

TEST(IntervalSet, EraseEverything) {
  IntervalSet s;
  s.insert(10, 20);
  s.erase(0, 100);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, EmptyInsertIgnored) {
  IntervalSet s;
  s.insert(5, 5);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, Overlaps) {
  IntervalSet s;
  s.insert(10, 20);
  EXPECT_TRUE(s.overlaps(15, 25));
  EXPECT_TRUE(s.overlaps(5, 11));
  EXPECT_FALSE(s.overlaps(20, 30));
  EXPECT_FALSE(s.overlaps(0, 10));
}

TEST(IntervalSet, NextAtOrAfter) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(30, 40);
  auto n = s.next_at_or_after(21);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->begin, 30u);
  EXPECT_FALSE(s.next_at_or_after(41).has_value());
}

TEST(IntervalSet, IteratorsWalkInAddressOrder) {
  IntervalSet s;
  s.insert(30, 40);
  s.insert(10, 20);
  std::vector<Interval> seen(s.begin(), s.end());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (Interval{10, 20}));
  EXPECT_EQ(seen[1], (Interval{30, 40}));
}

TEST(IntervalSet, ForEachInVisitsOverlapsOnly) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.insert(40, 50);
  std::vector<Interval> seen;
  s.for_each_in(5, 41, [&](const Interval& iv) { seen.push_back(iv); });
  ASSERT_EQ(seen.size(), 3u);
  seen.clear();
  s.for_each_in(10, 20, [&](const Interval& iv) { seen.push_back(iv); });
  EXPECT_TRUE(seen.empty());  // half-open: touching intervals don't overlap
  // Early exit on a false return.
  int visits = 0;
  s.for_each_in(0, 50, [&](const Interval&) {
    ++visits;
    return false;
  });
  EXPECT_EQ(visits, 1);
}

TEST(IntervalSet, FitQueries) {
  IntervalSet s;
  s.insert(100, 110);  // size 10
  s.insert(200, 264);  // size 64
  s.insert(300, 310);  // size 10
  auto best = s.best_fit(8);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->begin, 100u);  // smallest fitting, lowest begin on tie
  auto first = s.first_fit(11);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->begin, 200u);
  auto big = s.largest();
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->size(), 64u);
  EXPECT_FALSE(s.best_fit(65).has_value());
  EXPECT_FALSE(s.first_fit(65).has_value());

  // The size index tracks coalescing: joining the two 10-byte ranges with
  // the 64-byte one produces a single 210-byte interval.
  s.insert(110, 300);
  ASSERT_TRUE(s.best_fit(65).has_value());
  EXPECT_EQ(s.largest()->size(), 210u);
  EXPECT_EQ(s.total_size(), 210u);
}

TEST(IntervalSet, ForEachFittingSmallestFirst) {
  IntervalSet s;
  s.insert(0, 64);     // size 64
  s.insert(100, 110);  // size 10
  s.insert(200, 232);  // size 32
  std::vector<std::uint64_t> sizes;
  s.for_each_fitting(11, [&](const Interval& iv) { sizes.push_back(iv.size()); });
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{32, 64}));
  sizes.clear();
  s.for_each_sized_between(10, 64, [&](const Interval& iv) { sizes.push_back(iv.size()); });
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{10, 32}));
}

// Property-style sweep: IntervalSet must agree with a bitmap model.
class IntervalSetModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetModelTest, MatchesBitmapModel) {
  Rng rng(GetParam());
  constexpr std::uint64_t kSpace = 512;
  IntervalSet s;
  std::vector<bool> model(kSpace, false);
  for (int step = 0; step < 200; ++step) {
    std::uint64_t a = rng.below(kSpace);
    std::uint64_t b = rng.below(kSpace);
    if (a > b) std::swap(a, b);
    if (rng.chance(1, 2)) {
      s.insert(a, b);
      for (std::uint64_t i = a; i < b; ++i) model[i] = true;
    } else {
      s.erase(a, b);
      for (std::uint64_t i = a; i < b; ++i) model[i] = false;
    }
  }
  std::uint64_t model_total = 0;
  for (std::uint64_t i = 0; i < kSpace; ++i) {
    EXPECT_EQ(s.contains(i), model[i]) << "at address " << i;
    model_total += model[i] ? 1 : 0;
  }
  EXPECT_EQ(s.total_size(), model_total);
  // Invariant: intervals are sorted, disjoint, non-adjacent.
  auto ivs = s.intervals();
  for (std::size_t i = 1; i < ivs.size(); ++i) EXPECT_LT(ivs[i - 1].end, ivs[i].begin);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetModelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 42, 1337, 9999));

// ---- RNG ----

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkIndependent) {
  Rng a(5);
  Rng child = a.fork();
  // Child stream should not equal the parent's continuation.
  Rng b(5);
  b.next();  // consume the value fork() consumed
  EXPECT_NE(child.next(), b.next());
}

TEST(Rng, DeriveSeedDistinctAcrossStreams) {
  // Per-stage seeds inside one rewrite must be decorrelated: formerly the
  // pipeline handed out seed, seed+1, ... and reused the base for
  // placement, so nearby user seeds collided across stages. The mixer must
  // give every (base, stream) pair its own seed with no cheap collisions.
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 64; ++base)
    for (std::uint64_t stream = 0; stream < 8; ++stream)
      seen.insert(derive_seed(base, stream));
  EXPECT_EQ(seen.size(), 64u * 8u);

  // The classic trap: derive(seed, k) colliding with derive(seed+1, k-1)
  // (what plain seed+stream addition would do).
  for (std::uint64_t base = 0; base < 32; ++base)
    for (std::uint64_t stream = 1; stream < 8; ++stream)
      EXPECT_NE(derive_seed(base, stream), derive_seed(base + 1, stream - 1))
          << "base " << base << " stream " << stream;
}

// ---- monotonic arena ----

TEST(Arena, ResetRewindsButRetainsCapacity) {
  MonotonicArena arena(1024);
  EXPECT_EQ(arena.retained_bytes(), 0u);
  EXPECT_EQ(arena.used_bytes(), 0u);

  arena.alloc_array<std::uint8_t>(100);
  EXPECT_GE(arena.used_bytes(), 100u);
  std::size_t cap = arena.retained_bytes();
  ASSERT_GE(cap, 1024u);

  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.retained_bytes(), cap) << "reset() must keep the chunks";
}

TEST(Arena, TrimReleasesDownToBudgetAndStaysUsable) {
  MonotonicArena arena(4 * 1024);
  // Force a chain of geometrically-growing chunks (a few MB total).
  for (int i = 0; i < 64; ++i) arena.alloc_array<std::uint64_t>(4096);
  std::size_t grown = arena.retained_bytes();
  ASSERT_GT(grown, std::size_t{1} << 20);

  arena.trim(64 * 1024);
  EXPECT_LE(arena.retained_bytes(), 64u * 1024);
  EXPECT_EQ(arena.used_bytes(), 0u) << "trim() must also rewind";

  // Still fully functional: allocation regrows capacity on demand, and the
  // regrown memory is writable end to end.
  std::uint64_t* p = arena.alloc_array<std::uint64_t>(32 * 1024);
  p[0] = 1;
  p[32 * 1024 - 1] = 2;
  EXPECT_EQ(p[0] + p[32 * 1024 - 1], 3u);
  EXPECT_GE(arena.retained_bytes(), 32u * 1024 * sizeof(std::uint64_t));
}

TEST(Arena, TrimZeroReleasesEverything) {
  MonotonicArena arena;
  arena.alloc_array<std::uint8_t>(std::size_t{1} << 20);
  ASSERT_GT(arena.retained_bytes(), 0u);

  arena.trim(0);
  EXPECT_EQ(arena.retained_bytes(), 0u);

  // The growth schedule restarts from the default chunk, not the old
  // doubled high-water size.
  int* v = arena.create<int>(7);
  EXPECT_EQ(*v, 7);
  EXPECT_LE(arena.retained_bytes(), 64u * 1024);
}

TEST(Rng, DeriveSeedDeterministic) {
  EXPECT_EQ(derive_seed(42, 3), derive_seed(42, 3));
  EXPECT_NE(derive_seed(42, 3), derive_seed(42, 4));
  EXPECT_NE(derive_seed(42, 3), derive_seed(43, 3));
  // Streams of a zero base must still be distinct (zero-seed degeneracy).
  EXPECT_NE(derive_seed(0, 0), derive_seed(0, 1));
}

}  // namespace
}  // namespace zipr
