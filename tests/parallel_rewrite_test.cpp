// Differential determinism test for intra-rewrite parallelism: the
// ExecPolicy jobs knob controls HOW the pipeline runs (chunked sweep
// disassembly, parallel emission-log apply), never WHAT it produces.
// Every corpus CB, under every placement strategy, must serialize to
// byte-identical output for --jobs 1 and --jobs 4.
//
// Also the TSan subject for the parallel phases: tsan_smoke builds and
// runs this binary under ThreadSanitizer (the corpus is dominated by
// small CBs that stay on the serial path, so the synthetic large CB is
// included to force multi-chunk sweeps and a multi-slice apply phase).
#include <gtest/gtest.h>

#include "cgc/generator.h"
#include "zelf/io.h"
#include "zipr/placement.h"
#include "zipr/zipr.h"

namespace zipr {
namespace {

cgc::CbSpec large_spec() {
  cgc::CbSpec spec;
  spec.name = "synthetic-large-x1";
  spec.seed = 99;
  spec.handlers = 24;
  spec.dispatch = cgc::DispatchMode::kFptrTable;
  spec.filler_funcs = 48;
  spec.filler_ops = 24;
  spec.straightline = 600;
  spec.scratch_pages = 4;
  spec.data_in_text = true;
  spec.payload_max = 12;
  return spec;
}

TEST(ParallelRewrite, CorpusByteIdenticalAcrossJobs) {
  auto specs = cgc::cfe_corpus();
  specs.push_back(large_spec());

  const rewriter::PlacementKind kinds[] = {rewriter::PlacementKind::kNearfit,
                                           rewriter::PlacementKind::kDiversity,
                                           rewriter::PlacementKind::kPinPage};
  const char* names[] = {"nearfit", "diversity", "pinpage"};

  std::size_t compared = 0;
  for (const auto& spec : specs) {
    auto cb = cgc::generate_cb(spec);
    ASSERT_TRUE(cb.ok()) << spec.name << ": " << cb.error().message;

    for (int k = 0; k < 3; ++k) {
      RewriteOptions opts;
      opts.placement = kinds[k];

      auto serial = rewrite(cb->image, opts, {.jobs = 1});
      ASSERT_TRUE(serial.ok()) << spec.name << "/" << names[k] << " jobs=1: "
                               << serial.error().message;
      auto parallel = rewrite(cb->image, opts, {.jobs = 4});
      ASSERT_TRUE(parallel.ok()) << spec.name << "/" << names[k] << " jobs=4: "
                                 << parallel.error().message;

      Bytes a = zelf::write_image(serial->image);
      Bytes b = zelf::write_image(parallel->image);
      ASSERT_EQ(a, b) << "jobs=1 vs jobs=4 output diverged for " << spec.name
                      << " under " << names[k];
      ++compared;
    }
  }
  // 62 corpus CBs + the large CB, each under 3 strategies.
  EXPECT_EQ(compared, specs.size() * 3);
}

}  // namespace
}  // namespace zipr
