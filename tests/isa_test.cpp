// Unit + property tests for the VLX ISA: decode/encode round trips, exact
// wire encodings the rest of the system depends on (sled bytes, jump
// encodings), and classification predicates.
#include <gtest/gtest.h>

#include "isa/insn.h"

namespace zipr::isa {
namespace {

TEST(Decode, Nop) {
  Bytes b{0x90};
  auto i = decode(b);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->op, Op::kNop);
  EXPECT_EQ(i->length, 1);
}

TEST(Decode, Jmp8NegativeDisplacement) {
  Bytes b{0xEB, 0xFE};  // jmp -2 => self-loop
  auto i = decode(b);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->op, Op::kJmp);
  EXPECT_EQ(i->width, BranchWidth::kRel8);
  EXPECT_EQ(i->imm, -2);
  EXPECT_EQ(i->target(0x1000), 0x1000u);  // addr + 2 + (-2)
}

TEST(Decode, Jmp32) {
  Bytes b{0xE9, 0x10, 0x00, 0x00, 0x00};
  auto i = decode(b);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->op, Op::kJmp);
  EXPECT_EQ(i->width, BranchWidth::kRel32);
  EXPECT_EQ(i->target(0x400000), 0x400015u);
}

TEST(Decode, JccBothWidths) {
  Bytes b8{0x71, 0x05};  // jne +5
  auto i8 = decode(b8);
  ASSERT_TRUE(i8.ok());
  EXPECT_EQ(i8->op, Op::kJcc);
  EXPECT_EQ(i8->cond, Cond::kNe);
  EXPECT_EQ(i8->width, BranchWidth::kRel8);

  Bytes b32{0x7E, 0x00, 0x01, 0x00, 0x00};  // jb +256
  auto i32 = decode(b32);
  ASSERT_TRUE(i32.ok());
  EXPECT_EQ(i32->op, Op::kJcc);
  EXPECT_EQ(i32->cond, Cond::kB);
  EXPECT_EQ(i32->width, BranchWidth::kRel32);
  EXPECT_EQ(i32->imm, 256);
}

TEST(Decode, PushImmMatchesX86SledBytes) {
  // The exact byte sequence from the paper's sled discussion:
  // 0x68 0x90 0x90 0x90 0x90 decodes as push 0x90909090.
  Bytes b{0x68, 0x90, 0x90, 0x90, 0x90};
  auto i = decode(b);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->op, Op::kPushI);
  EXPECT_EQ(i->length, 5);
  EXPECT_EQ(static_cast<std::uint64_t>(i->imm), 0x90909090u);
}

TEST(Decode, InvalidOpcode) {
  Bytes b{0x00};
  EXPECT_FALSE(decode(b).ok());
}

TEST(Decode, TruncatedOperandFails) {
  Bytes b{0xE9, 0x01, 0x02};  // jmp32 with only 3 bytes
  EXPECT_FALSE(decode(b).ok());
}

TEST(Decode, EmptyFails) { EXPECT_FALSE(decode(Bytes{}).ok()); }

TEST(Decode, RegisterOutOfRangeFails) {
  Bytes b{0xB8, 0x09, 0, 0, 0, 0, 0, 0, 0, 0};  // movi64 r9
  EXPECT_FALSE(decode(b).ok());
}

TEST(Decode, SyscallNeedsSuffix) {
  Bytes good{0x0F, 0x05};
  EXPECT_TRUE(decode(good).ok());
  Bytes bad{0x0F, 0x06};
  EXPECT_FALSE(decode(bad).ok());
}

TEST(Decode, PushPopRegisterEncodedInOpcode) {
  for (int r = 0; r < kNumRegs; ++r) {
    Bytes pu{static_cast<Byte>(0x50 | r)};
    auto i = decode(pu);
    ASSERT_TRUE(i.ok());
    EXPECT_EQ(i->op, Op::kPush);
    EXPECT_EQ(i->ra, r);

    Bytes po{static_cast<Byte>(0x58 | r)};
    auto j = decode(po);
    ASSERT_TRUE(j.ok());
    EXPECT_EQ(j->op, Op::kPop);
    EXPECT_EQ(j->ra, r);
  }
}

TEST(Encode, JmpRel8OutOfRangeRejected) {
  EXPECT_FALSE(encode(make_jmp(128, BranchWidth::kRel8)).ok());
  EXPECT_FALSE(encode(make_jmp(-129, BranchWidth::kRel8)).ok());
  EXPECT_TRUE(encode(make_jmp(127, BranchWidth::kRel8)).ok());
  EXPECT_TRUE(encode(make_jmp(-128, BranchWidth::kRel8)).ok());
}

TEST(Encode, ExactJumpBytes) {
  auto b8 = encode(make_jmp(-2, BranchWidth::kRel8));
  ASSERT_TRUE(b8.ok());
  EXPECT_EQ(*b8, (Bytes{0xEB, 0xFE}));

  auto b32 = encode(make_jmp(0x1000, BranchWidth::kRel32));
  ASSERT_TRUE(b32.ok());
  EXPECT_EQ(*b32, (Bytes{0xE9, 0x00, 0x10, 0x00, 0x00}));
}

TEST(Encode, SledPushBytes) {
  auto b = encode(make_push_imm(0x90909090));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, (Bytes{0x68, 0x90, 0x90, 0x90, 0x90}));
}

TEST(Classify, ControlFlowPredicates) {
  EXPECT_TRUE(make_jmp(0, BranchWidth::kRel32).is_control_flow());
  EXPECT_FALSE(make_jmp(0, BranchWidth::kRel32).has_fallthrough());
  EXPECT_TRUE(make_jcc(Cond::kEq, 0, BranchWidth::kRel8).has_fallthrough());
  EXPECT_TRUE(make_call(0).has_fallthrough());
  EXPECT_TRUE(make_call(0).has_static_target());
  EXPECT_FALSE(make_ret().has_fallthrough());
  EXPECT_TRUE(make_ret().is_indirect());
  EXPECT_FALSE(make_nop().is_control_flow());
  EXPECT_FALSE(make_hlt().has_fallthrough());
}

TEST(Classify, PcRelativeData) {
  Insn lea;
  lea.op = Op::kLea;
  lea.ra = 1;
  lea.imm = 0x10;
  lea.length = 6;
  EXPECT_TRUE(lea.is_pc_relative_data());
  EXPECT_EQ(lea.pc_ref(0x400000), 0x400016u);
  EXPECT_FALSE(lea.is_control_flow());
}

TEST(Format, Readable) {
  EXPECT_EQ(to_string(make_nop()), "nop");
  EXPECT_EQ(to_string(make_jmp(0x10, BranchWidth::kRel32)), "jmp +0x10");
  EXPECT_EQ(to_string_at(make_jmp(0x10, BranchWidth::kRel32), 0x400000), "jmp 0x400015");
  Insn mov;
  mov.op = Op::kMov;
  mov.ra = 0;
  mov.rb = 7;
  EXPECT_EQ(to_string(mov), "mov r0, sp");
}

TEST(Cost, TransfersCostMoreThanAlu) {
  EXPECT_GT(cost_of(Op::kCall), cost_of(Op::kAdd));
  EXPECT_GT(cost_of(Op::kJmp), cost_of(Op::kAdd));
  EXPECT_GT(cost_of(Op::kSyscall), cost_of(Op::kCall));
}

// ---- property: encode(decode(x)) round trip over every constructible op ----

std::vector<Insn> representative_insns() {
  std::vector<Insn> v;
  auto add = [&](Insn i) { v.push_back(i); };

  for (Op op : {Op::kNop, Op::kHlt, Op::kRet, Op::kSyscall}) {
    Insn i;
    i.op = op;
    add(i);
  }
  add(make_jmp(5, BranchWidth::kRel8));
  add(make_jmp(-77, BranchWidth::kRel8));
  add(make_jmp(100000, BranchWidth::kRel32));
  for (int cc = 0; cc < 8; ++cc) {
    add(make_jcc(static_cast<Cond>(cc), 7, BranchWidth::kRel8));
    add(make_jcc(static_cast<Cond>(cc), -30000, BranchWidth::kRel32));
  }
  add(make_call(0x1234));
  add(make_push_imm(0xdeadbeef));
  for (Op op : {Op::kPush, Op::kPop, Op::kCallR, Op::kJmpR}) {
    for (std::uint8_t r : {0, 3, 7}) {
      Insn i;
      i.op = op;
      i.ra = r;
      add(i);
    }
  }
  {
    Insn i;
    i.op = Op::kJmpT;
    i.ra = 2;
    i.imm = 0x600010;
    add(i);
  }
  for (Op op : {Op::kMovI, Op::kAddI, Op::kSubI, Op::kAndI, Op::kOrI, Op::kXorI,
                Op::kShlI, Op::kShrI, Op::kCmpI, Op::kLea, Op::kLoadPc}) {
    Insn i;
    i.op = op;
    i.ra = 4;
    i.imm = -42;
    add(i);
  }
  {
    Insn i;
    i.op = Op::kMovI64;
    i.ra = 6;
    i.imm = static_cast<std::int64_t>(0xfedcba9876543210ULL);
    add(i);
  }
  for (Op op : {Op::kMov, Op::kAdd, Op::kSub, Op::kAnd, Op::kOr, Op::kXor, Op::kMul,
                Op::kDiv, Op::kMod, Op::kShl, Op::kShr, Op::kSar, Op::kCmp, Op::kTest}) {
    Insn i;
    i.op = op;
    i.ra = 1;
    i.rb = 5;
    add(i);
  }
  for (Op op : {Op::kLoad, Op::kStore, Op::kLoad8, Op::kStore8}) {
    Insn i;
    i.op = op;
    i.ra = 2;
    i.rb = 3;
    i.imm = -8;
    add(i);
  }
  return v;
}

class RoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RoundTripTest, EncodeDecodeIdentity) {
  auto all = representative_insns();
  ASSERT_LT(GetParam(), all.size());
  Insn in = all[GetParam()];
  in.length = static_cast<std::uint8_t>(encoded_length(in));

  auto bytes = encode(in);
  ASSERT_TRUE(bytes.ok()) << to_string(in) << ": " << bytes.error().message;
  EXPECT_EQ(bytes->size(), static_cast<std::size_t>(encoded_length(in)));

  auto back = decode(*bytes);
  ASSERT_TRUE(back.ok()) << to_string(in) << ": " << back.error().message;
  EXPECT_EQ(*back, in) << "decoded " << to_string(*back) << " from " << to_string(in);
}

INSTANTIATE_TEST_SUITE_P(AllRepresentatives, RoundTripTest,
                         ::testing::Range<std::size_t>(0, 68));

TEST(RoundTrip, RepresentativeCountMatchesRange) {
  // Keep the INSTANTIATE range in sync with the corpus size.
  EXPECT_EQ(representative_insns().size(), 68u);
}

// Decoding arbitrary byte soup must never crash, and successful decodes must
// report a length within the fetched window.
TEST(DecodeFuzz, ArbitraryBytesAreSafe) {
  std::uint64_t seed = 0x12345;
  for (int iter = 0; iter < 5000; ++iter) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    Bytes b;
    std::size_t n = 1 + (seed % 12);
    for (std::size_t i = 0; i < n; ++i) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      b.push_back(static_cast<Byte>(seed >> 33));
    }
    auto r = decode(b);
    if (r.ok()) {
      EXPECT_GE(r->length, 1);
      EXPECT_LE(r->length, static_cast<int>(b.size()));
      // Whatever decoded must re-encode to the identical prefix.
      auto re = encode(*r);
      ASSERT_TRUE(re.ok());
      EXPECT_EQ(Bytes(b.begin(), b.begin() + r->length), *re);
    }
  }
}

// decode_at() is the allocation-free twin of decode() (the VM's predecoded
// cache builds pages through it). The two are separate code paths, so this
// differential keeps them from drifting: on every input they must agree on
// accept/reject, and on accept produce the identical Insn.
TEST(DecodeAt, AgreesWithDecodeOnAllTwoByteStrings) {
  Bytes b(2);
  for (int op0 = 0; op0 < 256; ++op0) {
    for (int b1 = 0; b1 < 256; ++b1) {
      b[0] = static_cast<Byte>(op0);
      b[1] = static_cast<Byte>(b1);
      Insn at;
      bool ok = decode_at(b, at);
      auto ref = decode(b);
      ASSERT_EQ(ok, ref.ok()) << "op0=" << op0 << " b1=" << b1;
      if (ok) {
        EXPECT_EQ(at, *ref) << "op0=" << op0 << " b1=" << b1;
      }
    }
  }
}

TEST(DecodeAt, AgreesWithDecodeOnRandomStrings) {
  std::uint64_t seed = 0xdec0dea7;
  for (int iter = 0; iter < 20000; ++iter) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    Bytes b;
    std::size_t n = 1 + (seed % static_cast<std::uint64_t>(kMaxInsnLen));
    for (std::size_t i = 0; i < n; ++i) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      b.push_back(static_cast<Byte>(seed >> 33));
    }
    Insn at;
    bool ok = decode_at(b, at);
    auto ref = decode(b);
    ASSERT_EQ(ok, ref.ok());
    if (ok) {
      EXPECT_EQ(at, *ref);
    }
  }
}

}  // namespace
}  // namespace zipr::isa
