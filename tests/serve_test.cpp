// Tests for the zipr-serve layer: canonical options codec (cache-key
// completeness), the content-addressed artifact cache (LRU-by-bytes,
// input verification), the delta path (byte-identical or refused, never
// divergent), the serve engine's hit/miss/failure accounting, and the
// Unix-socket front end. The concurrency tests here are part of the TSan
// workload (`make tsan_smoke`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "serve/cache.h"
#include "serve/delta.h"
#include "serve/engine.h"
#include "serve/socket.h"
#include "testing_util.h"
#include "transform/api.h"
#include "zelf/io.h"
#include "zipr/options_codec.h"

namespace zipr {
namespace {

using serve::Artifact;
using serve::ArtifactCache;
using serve::CacheKey;
using serve::make_cache_key;
using serve::ServeEngine;
using serve::ServeOptions;
using serve::ServeResponse;
using serve::Source;
using ::zipr::testing::must_assemble;
using ::zipr::testing::must_rewrite;

// A program with a text segment plus rodata AND data payloads, so the
// delta tests have non-text pages to perturb.
constexpr const char* kDataProgram = R"(
.entry main
.text
main:
  movi r4, greet
  callr r4
  movi r0, 1
  movi r1, 0
  syscall
greet:
  movi r0, 2
  movi r1, 1
  movi r2, msg
  movi r3, 3
  syscall
  ret
.rodata
msg: .ascii "ok."
blob: .ascii "build-id: 0123456789abcdef"
.data
counters: .quad 0
tag: .ascii "version-A"
)";

Bytes assemble_bytes(std::string_view src) {
  return zelf::write_image(must_assemble(src));
}

Bytes cold_reference(ByteView input, const RewriteOptions& opts) {
  auto img = zelf::read_image(input);
  EXPECT_TRUE(img.ok());
  return zelf::write_image(must_rewrite(*img, opts).image);
}

// ---- options codec: cache-key completeness (satellite #1) ----

RewriteOptions all_fields_non_default() {
  RewriteOptions o;
  o.analysis.traversal.max_jump_table_slots = 17;
  o.analysis.traversal.scan_data_for_pointers = false;
  o.analysis.pinning.pin_call_returns = true;
  o.analysis.pinning.naive_pin_all = true;
  o.analysis.pinning.extra_pin_fraction = 0.375;
  o.analysis.pinning.extra_pin_seed = 99;
  o.placement = rewriter::PlacementKind::kDiversity;
  o.seed = 0xdeadbeefcafe;
  o.prefer_short_refs = false;
  o.coalesce = true;
  o.transforms = {"cfi", "stackpad"};
  o.cov_prune = false;
  return o;
}

TEST(OptionsCodec, RoundTripsEveryFieldNonDefault) {
  RewriteOptions o = all_fields_non_default();
  std::string text = serialize_options(o);

  auto parsed = parse_options(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(serialize_options(*parsed), text) << "round trip is not a fixpoint";

  EXPECT_EQ(parsed->analysis.traversal.max_jump_table_slots, 17u);
  EXPECT_FALSE(parsed->analysis.traversal.scan_data_for_pointers);
  EXPECT_TRUE(parsed->analysis.pinning.pin_call_returns);
  EXPECT_TRUE(parsed->analysis.pinning.naive_pin_all);
  EXPECT_DOUBLE_EQ(parsed->analysis.pinning.extra_pin_fraction, 0.375);
  EXPECT_EQ(parsed->analysis.pinning.extra_pin_seed, 99u);
  EXPECT_EQ(parsed->placement, rewriter::PlacementKind::kDiversity);
  EXPECT_EQ(parsed->seed, 0xdeadbeefcafeull);
  ASSERT_TRUE(parsed->prefer_short_refs.has_value());
  EXPECT_FALSE(*parsed->prefer_short_refs);
  ASSERT_TRUE(parsed->coalesce.has_value());
  EXPECT_TRUE(*parsed->coalesce);
  EXPECT_EQ(parsed->transforms, (std::vector<std::string>{"cfi", "stackpad"}));
  EXPECT_FALSE(parsed->cov_prune);
}

TEST(OptionsCodec, DefaultOptionsRoundTrip) {
  RewriteOptions o;
  auto parsed = parse_options(serialize_options(o));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(serialize_options(*parsed), serialize_options(o));
}

// Reflection checklist: every leaf option field must perturb the canonical
// form (and therefore the cache key). The mutator count below is pinned to
// the compile-time field count that options_codec.cpp static_asserts, so a
// newly added option fails BOTH the build (until serialized) and this list
// (until covered here).
TEST(OptionsCodec, EveryFieldChangesTheCanonicalForm) {
  using Mutator = void (*)(RewriteOptions&);
  const std::vector<std::pair<const char*, Mutator>> mutators = {
      {"max_jump_table_slots",
       [](RewriteOptions& o) { o.analysis.traversal.max_jump_table_slots = 5; }},
      {"scan_data_for_pointers",
       [](RewriteOptions& o) { o.analysis.traversal.scan_data_for_pointers = false; }},
      {"pin_call_returns",
       [](RewriteOptions& o) { o.analysis.pinning.pin_call_returns = true; }},
      {"naive_pin_all", [](RewriteOptions& o) { o.analysis.pinning.naive_pin_all = true; }},
      {"extra_pin_fraction",
       [](RewriteOptions& o) { o.analysis.pinning.extra_pin_fraction = 0.25; }},
      {"extra_pin_seed", [](RewriteOptions& o) { o.analysis.pinning.extra_pin_seed = 7; }},
      {"placement",
       [](RewriteOptions& o) { o.placement = rewriter::PlacementKind::kPinPage; }},
      {"seed", [](RewriteOptions& o) { o.seed = 424242; }},
      {"prefer_short_refs", [](RewriteOptions& o) { o.prefer_short_refs = true; }},
      {"coalesce", [](RewriteOptions& o) { o.coalesce = false; }},
      {"transforms", [](RewriteOptions& o) { o.transforms = {"cfi"}; }},
      {"cov_prune", [](RewriteOptions& o) { o.cov_prune = false; }},
  };

  // One mutator per flattened leaf field (the codec's compile-time count).
  constexpr std::size_t kLeaves =
      codec_detail::field_count<analysis::TraversalOptions>() +
      codec_detail::field_count<analysis::PinningOptions>() +
      (codec_detail::field_count<RewriteOptions>() -
       1 /* analysis replaced by its leaves */ +
       codec_detail::field_count<analysis::AnalysisOptions>() - 2);
  static_assert(codec_detail::field_count<analysis::AnalysisOptions>() == 2);
  EXPECT_EQ(mutators.size(), kLeaves)
      << "RewriteOptions gained/lost a leaf field; update this checklist";

  const std::string base = serialize_options(RewriteOptions{});
  for (const auto& [name, mutate] : mutators) {
    RewriteOptions o;
    mutate(o);
    EXPECT_NE(serialize_options(o), base)
        << "field '" << name << "' does not reach the canonical form "
        << "(cache keys would alias across configs)";
  }
}

TEST(OptionsCodec, RejectsMalformedTextWithOffendingInput) {
  for (const char* bad :
       {"", "nonsense", "zopt2;", "zopt1;jts=banana;", "zopt1;jts=1"}) {
    auto r = parse_options(bad);
    EXPECT_FALSE(r.ok()) << "accepted: '" << bad << "'";
  }
  // Trailing garbage after a valid form is rejected, with the garbage named.
  std::string valid = serialize_options(RewriteOptions{});
  auto r = parse_options(valid + "XTRA");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("XTRA"), std::string::npos) << r.error().message;

  auto bad_num = parse_options("zopt1;jts=banana;");
  ASSERT_FALSE(bad_num.ok());
  EXPECT_NE(bad_num.error().message.find("banana"), std::string::npos)
      << bad_num.error().message;
}

TEST(OptionsCodec, DigestSeparatesOptionSets) {
  EXPECT_NE(options_digest(RewriteOptions{}), options_digest(all_fields_non_default()));
  EXPECT_EQ(options_digest(RewriteOptions{}), options_digest(RewriteOptions{}));
}

// ---- artifact cache ----

Artifact tiny_artifact(std::string tag, std::size_t pad = 0) {
  Artifact a;
  a.input.assign(tag.begin(), tag.end());
  a.output.assign(pad, 0xAB);
  return a;
}

TEST(ArtifactCache, KeyDependsOnInputAndOptions) {
  Bytes in1 = {1, 2, 3};
  Bytes in2 = {1, 2, 4};
  EXPECT_EQ(make_cache_key(in1, "opts"), make_cache_key(in1, "opts"));
  EXPECT_NE(make_cache_key(in1, "opts"), make_cache_key(in2, "opts"));
  EXPECT_NE(make_cache_key(in1, "opts"), make_cache_key(in1, "stpo"));
}

TEST(ArtifactCache, LookupVerifiesStoredInputBytes) {
  ArtifactCache cache(1 << 20);
  Bytes real = {1, 2, 3};
  CacheKey key = make_cache_key(real, "o");
  cache.insert(key, tiny_artifact("\x01\x02\x03"));

  EXPECT_NE(cache.lookup(key, real), nullptr);
  // Same key, different bytes (simulated collision): must MISS, not serve.
  Bytes impostor = {9, 9, 9};
  EXPECT_EQ(cache.lookup(key, impostor), nullptr);
  EXPECT_EQ(cache.stats().verify_rejects, 1u);
}

TEST(ArtifactCache, EvictsLeastRecentlyUsedByBytes) {
  // Each artifact charges ~256 + input + output bytes; budget fits two.
  ArtifactCache cache(2 * (256 + 1 + 100));
  auto key_of = [](const std::string& tag) {
    Bytes b(tag.begin(), tag.end());
    return make_cache_key(b, "o");
  };
  cache.insert(key_of("a"), tiny_artifact("a", 100));
  cache.insert(key_of("b"), tiny_artifact("b", 100));
  ASSERT_EQ(cache.entry_count(), 2u);

  // Touch "a" so "b" becomes the LRU victim.
  Bytes a_in = {'a'};
  ASSERT_NE(cache.lookup(key_of("a"), a_in), nullptr);
  cache.insert(key_of("c"), tiny_artifact("c", 100));

  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  Bytes b_in = {'b'};
  Bytes c_in = {'c'};
  EXPECT_NE(cache.lookup(key_of("a"), a_in), nullptr) << "recently-used entry evicted";
  EXPECT_EQ(cache.lookup(key_of("b"), b_in), nullptr) << "LRU entry survived";
  EXPECT_NE(cache.lookup(key_of("c"), c_in), nullptr);
  EXPECT_LE(cache.stats().bytes, 2u * (256 + 1 + 100));
}

TEST(ArtifactCache, RecentKeysFilterOnOptionsAndTextDigest) {
  ArtifactCache cache(1 << 20);
  auto put = [&](const std::string& tag, std::uint64_t odigest, std::uint64_t tdigest) {
    Artifact a = tiny_artifact(tag);
    a.options_digest = odigest;
    a.text_digest = tdigest;
    Bytes b(tag.begin(), tag.end());
    cache.insert(make_cache_key(b, "o"), a);
  };
  put("a", /*odigest=*/1, /*tdigest=*/7);
  put("b", /*odigest=*/1, /*tdigest=*/8);  // same options, different text
  put("c", /*odigest=*/2, /*tdigest=*/7);  // same text, different options
  put("d", /*odigest=*/1, /*tdigest=*/7);  // the only true sibling of "a"

  auto keys = cache.recent_keys(/*options_digest=*/1, /*text_digest=*/7, /*limit=*/10);
  ASSERT_EQ(keys.size(), 2u);  // "a" and "d", neither "b" nor "c"
  for (const CacheKey& k : keys) {
    auto art = cache.peek(k);
    ASSERT_NE(art, nullptr);
    EXPECT_EQ(art->options_digest, 1u);
    EXPECT_EQ(art->text_digest, 7u);
  }
  EXPECT_EQ(cache.recent_keys(1, 7, /*limit=*/1).size(), 1u);
}

TEST(ArtifactCache, OversizeArtifactIsSkippedNotHalfInserted) {
  ArtifactCache cache(300);
  cache.insert(make_cache_key(Bytes{'x'}, "o"), tiny_artifact("x", 4096));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats().oversize_skips, 1u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// ---- serve engine: warm hits ----

TEST(ServeEngine, WarmHitIsByteIdenticalAndReplaysColdStats) {
  Bytes input = assemble_bytes(kDataProgram);
  RewriteOptions opts;
  opts.transforms = {"cfi"};

  ServeEngine engine;
  auto cold = engine.handle(input, opts);
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  EXPECT_EQ(cold->source, Source::kCold);
  EXPECT_EQ(cold->output, cold_reference(input, opts));

  auto warm = engine.handle(input, opts);
  ASSERT_TRUE(warm.ok()) << warm.error().message;
  EXPECT_EQ(warm->source, Source::kCacheHit);
  EXPECT_EQ(warm->output, cold->output) << "warm hit diverged from cold bytes";
  // Stats replay the producing cold rewrite, not zeros.
  EXPECT_EQ(warm->analysis.code_insns, cold->analysis.code_insns);
  EXPECT_EQ(warm->reassembly.dollops_placed, cold->reassembly.dollops_placed);
  EXPECT_DOUBLE_EQ(warm->cold_timing.total_ms(), cold->cold_timing.total_ms());

  auto stats = engine.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.cold, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(ServeEngine, DifferentOptionsMissTheCache) {
  Bytes input = assemble_bytes(kDataProgram);
  ServeEngine engine;
  RewriteOptions a;
  RewriteOptions b;
  b.seed = 1234;  // seed participates in the cache key

  ASSERT_TRUE(engine.handle(input, a).ok());
  auto second = engine.handle(input, b);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->source, Source::kCold);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
}

// ---- serve engine: failures never poison the cache (satellite #3) ----

std::atomic<int> g_flaky_failures_left{0};

class FlakyTransform : public transform::Transform {
 public:
  std::string name() const override { return "test_flaky"; }
  Status apply(transform::TransformContext&) override {
    int left = g_flaky_failures_left.load();
    while (left > 0 &&
           !g_flaky_failures_left.compare_exchange_weak(left, left - 1)) {
    }
    if (left > 0) return Error::internal("transient failure (flaky test transform)");
    return Status::success();
  }
};

TEST(ServeEngine, FailedRewriteIsNotCachedAndRetrySucceedsCold) {
  transform::register_transform("test_flaky",
                                [] { return std::make_unique<FlakyTransform>(); });
  Bytes input = assemble_bytes(kDataProgram);
  RewriteOptions opts;
  opts.transforms = {"test_flaky"};

  ServeEngine engine;
  g_flaky_failures_left.store(1);
  auto first = engine.handle(input, opts);
  ASSERT_FALSE(first.ok()) << "flaky transform unexpectedly succeeded";
  EXPECT_EQ(engine.stats().failures, 1u);
  EXPECT_EQ(engine.stats().cache.insertions, 0u) << "a FAILURE was cached";

  // The transient condition clears; the retry must re-run cold (a poisoned
  // cache would replay the failure or serve stale bytes).
  auto retry = engine.handle(input, opts);
  ASSERT_TRUE(retry.ok()) << retry.error().message;
  EXPECT_EQ(retry->source, Source::kCold);
  EXPECT_EQ(retry->output, cold_reference(input, opts));

  // And the SUCCESS is now cached.
  auto warm = engine.handle(input, opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->source, Source::kCacheHit);
}

TEST(ServeEngine, MalformedInputFailsWithoutTouchingTheCache) {
  ServeEngine engine;
  Bytes garbage = {'n', 'o', 't', 'z', 'e', 'l', 'f'};
  EXPECT_FALSE(engine.handle(garbage, RewriteOptions{}).ok());
  EXPECT_EQ(engine.stats().failures, 1u);
  EXPECT_EQ(engine.stats().cache.insertions, 0u);
}

// ---- serve engine: delta path ----

// Flip data bytes that are NOT code-pointer shaped: mutate the "version-A"
// tag in .data. Every 8-byte window over ASCII text decodes far outside
// [kTextBase, text end), so the validator can prove IR equivalence.
Bytes perturb_data_tag(ByteView input) {
  auto img = zelf::read_image(input);
  EXPECT_TRUE(img.ok());
  bool patched = false;
  for (auto& seg : img->segments) {
    if (seg.kind != zelf::SegKind::kData) continue;
    for (std::size_t i = 0; i + 1 < seg.bytes.size(); ++i) {
      if (seg.bytes[i] == '-' && seg.bytes[i + 1] == 'A') {
        seg.bytes[i + 1] = 'B';  // "version-A" -> "version-B"
        patched = true;
      }
    }
  }
  EXPECT_TRUE(patched) << "test program lost its .data tag";
  return zelf::write_image(*img);
}

TEST(ServeEngine, DeltaHitIsByteIdenticalToColdRewrite) {
  Bytes v1 = assemble_bytes(kDataProgram);
  Bytes v2 = perturb_data_tag(v1);
  ASSERT_NE(v1, v2);
  RewriteOptions opts;
  opts.transforms = {"cfi"};

  ServeEngine engine;
  ASSERT_TRUE(engine.handle(v1, opts).ok());

  auto delta = engine.handle(v2, opts);
  ASSERT_TRUE(delta.ok()) << delta.error().message;
  EXPECT_EQ(delta->source, Source::kDeltaHit);
  EXPECT_EQ(delta->delta_changed_pages, 1u);
  EXPECT_EQ(delta->output, cold_reference(v2, opts))
      << "delta path emitted bytes a cold rewrite would not";

  // The delta result was promoted: resubmitting v2 is now a full hit.
  auto warm = engine.handle(v2, opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->source, Source::kCacheHit);
  EXPECT_EQ(warm->output, delta->output);

  auto stats = engine.stats();
  EXPECT_EQ(stats.delta_hits, 1u);
  EXPECT_EQ(stats.cold, 1u);
}

TEST(ServeEngine, DeltaRefusesCodePointerShapedWordAndFallsBackCold) {
  Bytes v1 = assemble_bytes(kDataProgram);
  RewriteOptions opts;

  // Plant a text address into the .data quad: analysis COULD see this word
  // (the data-pointer scan), so the validator must refuse and the engine
  // must fall back to a full cold rewrite -- still byte-correct.
  auto img = zelf::read_image(v1);
  ASSERT_TRUE(img.ok());
  std::uint64_t text_addr = 0;
  for (auto& seg : img->segments)
    if (seg.executable()) text_addr = seg.vaddr + 8;
  bool planted = false;
  for (auto& seg : img->segments) {
    if (seg.kind != zelf::SegKind::kData || seg.bytes.size() < 8) continue;
    for (int i = 0; i < 8; ++i)  // overwrite the `counters:` quad in place
      seg.bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(text_addr >> (8 * i));
    planted = true;
  }
  ASSERT_TRUE(planted);
  Bytes v2 = zelf::write_image(*img);

  ServeEngine engine;
  ASSERT_TRUE(engine.handle(v1, opts).ok());
  auto second = engine.handle(v2, opts);
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_EQ(second->source, Source::kCold) << "unsafe delta was served";
  EXPECT_EQ(second->output, cold_reference(v2, opts));
  EXPECT_EQ(engine.stats().delta_fallbacks, 1u);
  EXPECT_EQ(engine.stats().delta_hits, 0u);
}

TEST(ServeEngine, DeltaRefusesTextChanges) {
  Bytes v1 = assemble_bytes(kDataProgram);
  std::string changed(kDataProgram);
  auto pos = changed.find("movi r3, 3");
  ASSERT_NE(pos, std::string::npos);
  changed.replace(pos, 10, "movi r3, 2");  // text differs, data identical
  Bytes v2 = assemble_bytes(changed);

  ServeEngine engine;
  ASSERT_TRUE(engine.handle(v1, RewriteOptions{}).ok());
  auto second = engine.handle(v2, RewriteOptions{});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->source, Source::kCold);
  EXPECT_EQ(second->output, cold_reference(v2, RewriteOptions{}));
  EXPECT_EQ(engine.stats().delta_hits, 0u);
}

TEST(TryDelta, RefusesWhenDiffSpansTooManyPages) {
  Bytes v1 = assemble_bytes(kDataProgram);
  Bytes out = cold_reference(v1, RewriteOptions{});

  auto img = zelf::read_image(v1);
  ASSERT_TRUE(img.ok());
  for (auto& seg : img->segments)
    if (seg.kind == zelf::SegKind::kData && !seg.bytes.empty())
      seg.bytes.back() ^= 0x01;
  Bytes v2 = zelf::write_image(*img);

  serve::DeltaOptions zero_budget;
  zero_budget.max_changed_pages = 0;
  std::string reason;
  EXPECT_FALSE(serve::try_delta(v1, out, v2, zero_budget, &reason).has_value());
  EXPECT_NE(reason.find("pages"), std::string::npos) << reason;
}

// ---- serve engine: persistent artifact cache ----

std::string temp_cache_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("zipr_serve_cache_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".bin"))
      .string();
}

TEST(ServeEngine, PersistedCacheAnswersAcrossRestartByteIdentically) {
  const std::string path = temp_cache_path("roundtrip");
  std::remove(path.c_str());
  Bytes input = assemble_bytes(kDataProgram);
  RewriteOptions opts;
  opts.transforms = {"cfi"};

  Bytes cold_bytes;
  {
    ServeOptions sopts;
    sopts.cache_file = path;
    ServeEngine engine(sopts);
    auto cold = engine.handle(input, opts);
    ASSERT_TRUE(cold.ok()) << cold.error().message;
    EXPECT_EQ(cold->source, Source::kCold);
    cold_bytes = cold->output;
  }  // engine destroyed; only the file survives

  ServeOptions sopts;
  sopts.cache_file = path;
  ServeEngine restarted(sopts);
  auto warm = restarted.handle(input, opts);
  ASSERT_TRUE(warm.ok()) << warm.error().message;
  EXPECT_EQ(warm->source, Source::kCacheHit) << "restart lost the persisted artifact";
  EXPECT_EQ(warm->output, cold_bytes);
  EXPECT_EQ(warm->output, cold_reference(input, opts));
  // Replayed artifacts carry the producing rewrite's stats, not zeros.
  EXPECT_GT(warm->analysis.code_insns, 0u);

  // Persistence must not alias keys: same input under other options misses.
  auto miss = restarted.handle(input, RewriteOptions{});
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->source, Source::kCold);
  std::remove(path.c_str());
}

TEST(ServeEngine, CorruptedCacheFileDegradesToColdNeverWrongBytes) {
  const std::string path = temp_cache_path("corrupt");
  std::remove(path.c_str());
  Bytes input = assemble_bytes(kDataProgram);
  RewriteOptions opts;
  opts.transforms = {"cfi"};
  {
    ServeOptions sopts;
    sopts.cache_file = path;
    ServeEngine engine(sopts);
    ASSERT_TRUE(engine.handle(input, opts).ok());
  }

  // Flip one byte in the middle of the file (lands inside the only
  // record): the checksum must reject it on replay.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  long size = std::ftell(f);
  ASSERT_GT(size, 64);
  ASSERT_EQ(std::fseek(f, size / 2, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, size / 2, SEEK_SET), 0);
  std::fputc(c ^ 0x5a, f);
  std::fclose(f);

  ServeOptions sopts;
  sopts.cache_file = path;
  ServeEngine engine(sopts);
  auto r = engine.handle(input, opts);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r->source, Source::kCold) << "a corrupted record was served";
  EXPECT_EQ(r->output, cold_reference(input, opts))
      << "corruption fallback produced wrong bytes";
  std::remove(path.c_str());
}

TEST(ServeEngine, GarbageCacheFileIsACleanColdStart) {
  const std::string path = temp_cache_path("garbage");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a zipr artifact cache", f);
  std::fclose(f);

  // Construction must survive (memory-only fallback) and serve correctly.
  ServeOptions sopts;
  sopts.cache_file = path;
  ServeEngine engine(sopts);
  Bytes input = assemble_bytes(kDataProgram);
  RewriteOptions opts;
  auto r = engine.handle(input, opts);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r->source, Source::kCold);
  EXPECT_EQ(r->output, cold_reference(input, opts));
  std::remove(path.c_str());
}

// ---- serve engine: recycled workspaces ----

// Input variants that differ only in extra .data payload: each is its own
// cache key but all drive the same-shaped cold pipeline.
Bytes variant_input(int i) {
  std::string src(kDataProgram);
  src += "salt" + std::to_string(i) + ": .quad " + std::to_string(1000 + i) + "\n";
  return assemble_bytes(src);
}

TEST(ServeEngine, ColdThroughRecycledWorkspaceIsByteIdentical) {
  // clear_cache() drops artifacts but keeps the engine's workspaces warm,
  // so the second pass runs the FULL cold pipeline through recycled
  // buffers; its bytes must match the fresh-workspace first pass exactly.
  RewriteOptions opts;
  opts.transforms = {"cfi"};
  ServeOptions sopts;
  sopts.enable_delta = false;  // variants share text; force the COLD path
  ServeEngine engine(sopts);
  constexpr int kVariants = 6;
  std::vector<Bytes> first_pass(kVariants);
  for (int i = 0; i < kVariants; ++i) {
    auto r = engine.handle(variant_input(i), opts);
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_EQ(r->source, Source::kCold);
    first_pass[i] = r->output;
  }

  engine.clear_cache();
  for (int i = 0; i < kVariants; ++i) {
    auto r = engine.handle(variant_input(i), opts);
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_EQ(r->source, Source::kCold) << "clear_cache() left an artifact behind";
    EXPECT_EQ(r->output, first_pass[i])
        << "recycled workspace drifted on variant " << i;
  }
}

TEST(ServeEngine, SubmitStormOverRecycledWorkspacesMatchesSyncHandle) {
  // Digest differential, fresh vs recycled, under concurrency: references
  // come from a single-threaded engine with fresh state; the storm engine
  // then serves the same corpus repeatedly across jobs=4 workers, with
  // clear_cache() between rounds so every round runs cold through
  // RECYCLED pool workspaces. Part of the TSan workload (tsan_smoke).
  constexpr int kVariants = 8;
  constexpr int kRounds = 3;
  RewriteOptions opts;

  ServeOptions nodelta;
  nodelta.enable_delta = false;  // variants share text; force the COLD path

  std::vector<Bytes> inputs;
  std::vector<Bytes> reference;
  {
    ServeEngine sync_engine(nodelta);
    for (int i = 0; i < kVariants; ++i) {
      inputs.push_back(variant_input(i));
      auto r = sync_engine.handle(inputs.back(), opts);
      ASSERT_TRUE(r.ok()) << r.error().message;
      reference.push_back(r->output);
    }
  }

  ServeOptions sopts = nodelta;
  sopts.jobs = 4;
  ServeEngine engine(sopts);
  std::uint64_t total = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::future<Result<ServeResponse>>> futures;
    for (int rep = 0; rep < 2; ++rep)
      for (int i = 0; i < kVariants; ++i)
        futures.push_back(engine.submit(inputs[static_cast<std::size_t>(i)], opts));
    for (std::size_t k = 0; k < futures.size(); ++k) {
      auto r = futures[k].get();
      ASSERT_TRUE(r.ok()) << r.error().message;
      EXPECT_EQ(r->output, reference[k % kVariants])
          << "round " << round << " request " << k << " diverged from sync handle()";
      ++total;
    }
    engine.clear_cache();  // next round runs cold again on warm workspaces
  }
  auto stats = engine.stats();
  EXPECT_EQ(stats.requests, total);
  EXPECT_EQ(stats.failures, 0u);
  // Every round must re-run at least the whole corpus cold.
  EXPECT_GE(stats.cold, static_cast<std::uint64_t>(kVariants * kRounds));
}

// ---- serve engine: async submits + close (satellite #4 companion) ----

TEST(ServeEngine, ConcurrentSubmitsAllResolveAndAgree) {
  Bytes input = assemble_bytes(kDataProgram);
  RewriteOptions opts;
  ServeOptions sopts;
  sopts.jobs = 4;
  ServeEngine engine(sopts);

  constexpr int kJobs = 16;
  std::vector<std::future<Result<ServeResponse>>> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) futures.push_back(engine.submit(input, opts));

  Bytes reference = cold_reference(input, opts);
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_EQ(r->output, reference);
  }
  auto stats = engine.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kJobs));
  // Determinism means every response agrees; at least one ran cold and
  // every non-cold request was served from the cache it populated.
  EXPECT_GE(stats.cold, 1u);
  EXPECT_EQ(stats.cold + stats.cache_hits, static_cast<std::uint64_t>(kJobs));
}

TEST(ServeEngine, CloseDrainsAcceptedJobsAndRejectsNewOnes) {
  Bytes input = assemble_bytes(kDataProgram);
  ServeOptions sopts;
  sopts.jobs = 2;
  ServeEngine engine(sopts);

  std::vector<std::future<Result<ServeResponse>>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(engine.submit(input, RewriteOptions{}));
  engine.close();

  // Every accepted future resolves (drained, not abandoned)...
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)), std::future_status::ready)
        << "close() abandoned an accepted job";
    ASSERT_TRUE(f.get().ok());
  }
  // ...and post-close submits resolve immediately with a checked error.
  auto rejected = engine.submit(input, RewriteOptions{});
  auto r = rejected.get();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("closed"), std::string::npos) << r.error().message;
  EXPECT_GE(engine.stats().rejected_closed, 1u);
}

TEST(ServeEngine, ConcurrentCloseIsSafe) {
  Bytes input = assemble_bytes(kDataProgram);
  ServeOptions sopts;
  sopts.jobs = 2;
  auto engine = std::make_unique<ServeEngine>(sopts);
  for (int i = 0; i < 4; ++i) (void)engine->submit(input, RewriteOptions{});

  std::vector<std::thread> closers;
  for (int i = 0; i < 4; ++i) closers.emplace_back([&] { engine->close(); });
  for (auto& t : closers) t.join();
  engine.reset();  // destructor close() after explicit close()s
}

// ---- socket front end ----

TEST(ServeSocket, RoundTripThenCacheHit) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("zipr_serve_test_" + std::to_string(::getpid()) + ".sock"))
          .string();
  std::remove(path.c_str());

  ServeEngine engine;
  serve::SocketServerOptions sopts;
  sopts.path = path;
  sopts.max_requests = 3;
  std::thread server([&] {
    Status st = serve::serve_on_socket(engine, sopts);
    EXPECT_TRUE(st.ok()) << st.error().message;
  });

  Bytes input = assemble_bytes(kDataProgram);
  RewriteOptions opts;
  opts.transforms = {"cfi"};

  // The server binds asynchronously; retry until it accepts.
  Result<serve::SubmitReply> first = Error::internal("never connected");
  for (int attempt = 0; attempt < 200; ++attempt) {
    first = serve::submit_over_socket(path, input, opts);
    if (first.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(first.ok()) << first.error().message;
  EXPECT_EQ(first->source, Source::kCold);
  EXPECT_EQ(first->output, cold_reference(input, opts));

  auto second = serve::submit_over_socket(path, input, opts);
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_EQ(second->source, Source::kCacheHit);
  EXPECT_EQ(second->output, first->output);

  // A garbage frame gets an in-band error and does not kill the server.
  Bytes garbage = {'j', 'u', 'n', 'k'};
  auto bad = serve::submit_over_socket(path, garbage, opts);
  EXPECT_FALSE(bad.ok());

  server.join();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zipr
