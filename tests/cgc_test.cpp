// Tests for the CGC harness: CB generation, pollers, metrics, exploits,
// and the large-library robustness workloads.
#include <gtest/gtest.h>

#include "cgc/exploits.h"
#include "cgc/filter.h"
#include "cgc/generator.h"
#include "cgc/metrics.h"
#include "cgc/poller.h"
#include "cgc/workload.h"
#include "testing_util.h"

namespace zipr::cgc {
namespace {

using ::zipr::testing::must_rewrite;

TEST(Generator, CorpusHas62DistinctCbs) {
  auto corpus = cfe_corpus();
  ASSERT_EQ(corpus.size(), 62u);
  std::set<std::string> names;
  std::set<std::uint64_t> seeds;
  for (const auto& s : corpus) {
    names.insert(s.name);
    seeds.insert(s.seed);
  }
  EXPECT_EQ(names.size(), 62u);
  EXPECT_EQ(seeds.size(), 62u);
}

TEST(Generator, DeterministicPerSeed) {
  auto corpus = cfe_corpus();
  auto a = generate_cb(corpus[0]);
  auto b = generate_cb(corpus[0]);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->image.text().bytes, b->image.text().bytes);
  EXPECT_EQ(a->payload_len, b->payload_len);
}

TEST(Generator, AllCorpusCbsAssemble) {
  for (const auto& spec : cfe_corpus()) {
    auto cb = generate_cb(spec);
    ASSERT_TRUE(cb.ok()) << spec.name << ": " << cb.error().message;
    EXPECT_TRUE(cb->image.validate().ok()) << spec.name;
    EXPECT_TRUE(cb->image.symbols.empty()) << spec.name << ": CBs must ship without metadata";
    EXPECT_EQ(cb->payload_len.size(), static_cast<std::size_t>(spec.handlers));
  }
}

TEST(Generator, CorpusSizesVary) {
  std::size_t min_text = SIZE_MAX, max_text = 0;
  for (const auto& spec : cfe_corpus()) {
    auto cb = generate_cb(spec);
    ASSERT_TRUE(cb.ok());
    min_text = std::min(min_text, cb->image.text().bytes.size());
    max_text = std::max(max_text, cb->image.text().bytes.size());
  }
  EXPECT_LT(min_text, 2000u);
  EXPECT_GT(max_text, 20000u);
}

TEST(Generator, DenseRejectsTooManyHandlers) {
  CbSpec s;
  s.dispatch = DispatchMode::kDenseTable;
  s.handlers = 6;
  EXPECT_FALSE(generate_cb(s).ok());
}

TEST(Poller, WellFormedInputsTerminate) {
  auto cb = generate_cb(cfe_corpus()[3]);
  ASSERT_TRUE(cb.ok());
  auto polls = make_polls(*cb, 10, 7);
  ASSERT_EQ(polls.size(), 10u);
  for (const auto& poll : polls) {
    auto r = vm::run_program(cb->image, poll.input, poll.vm_seed);
    EXPECT_TRUE(r.exited) << "poll did not terminate: " << vm::fault_name(r.fault);
    EXPECT_EQ(r.exit_status, 0);
  }
}

TEST(Poller, DeterministicPerSeed) {
  auto cb = generate_cb(cfe_corpus()[1]);
  ASSERT_TRUE(cb.ok());
  auto a = make_polls(*cb, 5, 11);
  auto b = make_polls(*cb, 5, 11);
  auto c = make_polls(*cb, 5, 12);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(a[i].input, b[i].input);
  bool any_diff = false;
  for (int i = 0; i < 5; ++i) any_diff |= a[i].input != c[i].input;
  EXPECT_TRUE(any_diff);
}

// The core CGC claim: every corpus CB, rewritten, passes all polls.
// Split into slices so failures localize.
class CorpusFunctionalTest : public ::testing::TestWithParam<int> {};

TEST_P(CorpusFunctionalTest, RewrittenCbsPassAllPolls) {
  auto corpus = cfe_corpus();
  const int slice = GetParam();
  for (std::size_t i = static_cast<std::size_t>(slice); i < corpus.size(); i += 8) {
    auto cb = generate_cb(corpus[i]);
    ASSERT_TRUE(cb.ok()) << corpus[i].name;
    RewriteOptions opts;
    auto rewritten = must_rewrite(cb->image, opts);
    for (const auto& poll : make_polls(*cb, 4, 99)) {
      auto cmp = run_poll(cb->image, rewritten.image, poll);
      EXPECT_TRUE(cmp.functional)
          << corpus[i].name << " diverged on input " << hex_dump(poll.input);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Slices, CorpusFunctionalTest, ::testing::Range(0, 8));

TEST(Metrics, HistogramBinning) {
  EXPECT_EQ(histogram_bin(-0.01), 0);
  EXPECT_EQ(histogram_bin(0.0), 0);
  EXPECT_EQ(histogram_bin(0.03), 1);
  EXPECT_EQ(histogram_bin(0.05), 1);
  EXPECT_EQ(histogram_bin(0.07), 2);
  EXPECT_EQ(histogram_bin(0.15), 3);
  EXPECT_EQ(histogram_bin(0.35), 4);
  EXPECT_EQ(histogram_bin(0.9), 5);
}

TEST(Metrics, EvaluateCbProducesSaneNumbers) {
  auto cb = generate_cb(cfe_corpus()[0]);
  ASSERT_TRUE(cb.ok());
  EvalOptions opts;
  opts.polls = 6;
  auto m = evaluate_cb(*cb, opts);
  ASSERT_TRUE(m.ok()) << m.error().message;
  EXPECT_TRUE(m->functional);
  EXPECT_GE(m->filesize_overhead, 0.0);
  EXPECT_LT(m->filesize_overhead, 0.5);
  EXPECT_GT(m->exec_overhead, -0.5);
  EXPECT_LT(m->exec_overhead, 1.0);
  EXPECT_GE(m->mem_overhead, 0.0);
  EXPECT_EQ(m->polls, 6u);
  EXPECT_EQ(m->rewritten_file,
            m->original_file + m->rewrite_stats.overflow_bytes);
}

TEST(Metrics, CfiCostsMoreThanNull) {
  auto cb = generate_cb(cfe_corpus()[31]);  // an fptr CB: CFI instruments it
  ASSERT_TRUE(cb.ok());
  EvalOptions null_opts;
  null_opts.polls = 4;
  EvalOptions cfi_opts = null_opts;
  cfi_opts.rewrite.transforms = {"cfi"};
  auto a = evaluate_cb(*cb, null_opts);
  auto b = evaluate_cb(*cb, cfi_opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->functional);
  EXPECT_TRUE(b->functional);
  EXPECT_GT(b->filesize_overhead, a->filesize_overhead);
  EXPECT_GT(b->exec_overhead, a->exec_overhead);
}

TEST(Metrics, MeanOverhead) {
  std::vector<CbMetrics> ms(2);
  ms[0].exec_overhead = 0.02;
  ms[1].exec_overhead = 0.04;
  EXPECT_DOUBLE_EQ(mean_overhead(ms, &CbMetrics::exec_overhead), 0.03);
  EXPECT_DOUBLE_EQ(mean_overhead({}, &CbMetrics::exec_overhead), 0.0);
}

// ---- exploits ----

TEST(Exploits, CorpusBuilds) {
  auto vulns = vulnerable_corpus();
  ASSERT_EQ(vulns.size(), 4u);
  for (const auto& v : vulns) {
    EXPECT_TRUE(v.image.validate().ok()) << v.name;
    EXPECT_FALSE(v.exploit_input.empty()) << v.name;
  }
}

TEST(Exploits, ExploitsWorkOnOriginals) {
  for (const auto& v : vulnerable_corpus()) {
    auto r = vm::run_program(v.image, v.exploit_input);
    std::string out(r.output.begin(), r.output.end());
    EXPECT_NE(out.find(v.leak_marker), std::string::npos)
        << v.name << ": exploit must work on the unprotected original";
  }
}

TEST(Exploits, BaselineRewritePreservesVulnerability) {
  // A Null rewrite adds no security: exploits still land.
  for (const auto& v : vulnerable_corpus()) {
    auto rewritten = must_rewrite(v.image, {});
    auto outcome = assess(v, rewritten.image);
    EXPECT_TRUE(outcome.benign_works) << v.name;
    EXPECT_TRUE(outcome.exploit_leaked) << v.name;
  }
}

TEST(Exploits, BlockingTransformStopsEachExploit) {
  for (const auto& v : vulnerable_corpus()) {
    RewriteOptions opts;
    opts.transforms = {v.blocking_transform};
    auto rewritten = must_rewrite(v.image, opts);
    auto outcome = assess(v, rewritten.image);
    EXPECT_TRUE(outcome.benign_works) << v.name << " under " << v.blocking_transform;
    EXPECT_FALSE(outcome.exploit_leaked) << v.name << " under " << v.blocking_transform;
    EXPECT_EQ(outcome.exploit_fault, vm::Fault::kHalt) << v.name;
  }
}

TEST(Exploits, FullDefenseStackStopsEverything) {
  for (const auto& v : vulnerable_corpus()) {
    RewriteOptions opts;
    opts.transforms = {"cfi", "canary"};
    auto rewritten = must_rewrite(v.image, opts);
    auto outcome = assess(v, rewritten.image);
    EXPECT_TRUE(outcome.benign_works) << v.name;
    EXPECT_FALSE(outcome.exploit_leaked) << v.name;
  }
}

// ---- network filters (the information-disclosure defense) ----

TEST(Filter, RuleMatching) {
  NetworkFilter f;
  FilterRule exact;
  exact.name = "exact";
  exact.pattern = {0xde, 0xad};
  f.add_rule(exact);

  EXPECT_TRUE(f.allows(Bytes{1, 2, 3}));
  EXPECT_FALSE(f.allows(Bytes{0xde, 0xad}));
  EXPECT_FALSE(f.allows(Bytes{9, 0xde, 0xad, 9}));  // anywhere in the stream
  EXPECT_TRUE(f.allows(Bytes{0xde}));               // partial: no match
  EXPECT_TRUE(f.allows(Bytes{}));
}

TEST(Filter, AnchoredAndMaskedRules) {
  NetworkFilter f;
  FilterRule header;
  header.name = "bad-header";
  header.pattern = {0x20};
  header.mask = {0xe0};  // any first byte in [0x20, 0x3f]
  header.anchored = true;
  f.add_rule(header);

  EXPECT_FALSE(f.allows(Bytes{0x20}));
  EXPECT_FALSE(f.allows(Bytes{0x3f, 1, 2}));
  EXPECT_TRUE(f.allows(Bytes{0x40}));
  EXPECT_TRUE(f.allows(Bytes{1, 0x20}));  // anchored: not at offset 0
  const FilterRule* hit = f.match(Bytes{0x27});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->name, "bad-header");
}

TEST(Filter, DisclosureExploitLeaksWithoutFilter) {
  DisclosureCb cb = make_disclosure_cb();
  auto benign = vm::run_program(cb.image, cb.benign_input);
  EXPECT_TRUE(benign.exited);
  EXPECT_EQ(std::string(benign.output.begin(), benign.output.end()), "hello");

  auto leak = vm::run_program(cb.image, cb.exploit_input);
  std::string out(leak.output.begin(), leak.output.end());
  EXPECT_NE(out.find(cb.leak_marker), std::string::npos)
      << "disclosure exploit must work unfiltered";
}

TEST(Filter, CfiCannotStopDisclosureButFilterCan) {
  // The paper's division of labour: information disclosure does not hijack
  // control flow, so rewriting-based defenses never fire; the network
  // filter is the right tool.
  DisclosureCb cb = make_disclosure_cb();

  RewriteOptions opts;
  opts.transforms = {"cfi", "canary"};
  auto guarded = must_rewrite(cb.image, opts);
  auto still_leaks = vm::run_program(guarded.image, cb.exploit_input);
  std::string out(still_leaks.output.begin(), still_leaks.output.end());
  EXPECT_NE(out.find(cb.leak_marker), std::string::npos)
      << "control-flow defenses cannot see a pure disclosure bug";

  NetworkFilter filter;
  filter.add_rule(cb.signature);
  auto dropped = run_filtered(filter, guarded.image, cb.exploit_input);
  EXPECT_TRUE(dropped.exited);
  EXPECT_EQ(dropped.exit_status, -2);
  EXPECT_TRUE(dropped.output.empty());

  // Benign traffic still flows through filter + rewritten binary.
  auto benign = run_filtered(filter, guarded.image, cb.benign_input);
  EXPECT_TRUE(benign.exited);
  EXPECT_EQ(std::string(benign.output.begin(), benign.output.end()), "hello");
}

// ---- robustness workloads ----

TEST(Workload, BuildsAndRunsApacheLike) {
  auto spec = apache_like_spec();
  spec.functions = 40;  // scaled down for unit-test speed
  auto w = make_workload(spec);
  ASSERT_TRUE(w.ok()) << w.error().message;
  EXPECT_EQ(w->unit_tests.size(), 40u);
  // Original passes its own suite trivially.
  auto self = run_suite(*w, w->image);
  EXPECT_EQ(self.passed, self.total);
}

TEST(Workload, NullRewritePassesUnitSuite) {
  auto spec = libc_like_spec();
  spec.functions = 60;  // scaled down for unit-test speed
  auto w = make_workload(spec);
  ASSERT_TRUE(w.ok()) << w.error().message;
  auto rewritten = must_rewrite(w->image, {});
  auto suite = run_suite(*w, rewritten.image);
  EXPECT_EQ(suite.passed, suite.total) << suite.total - suite.passed << " tests regressed";
  EXPECT_EQ(suite.total, 60);
}

TEST(Workload, IrregularLibraryRewrites) {
  WorkloadSpec spec;
  spec.name = "irregular";
  spec.seed = 44;
  spec.functions = 80;
  spec.irregular = true;
  auto w = make_workload(spec);
  ASSERT_TRUE(w.ok()) << w.error().message;
  RewriteResult r = must_rewrite(w->image, {});
  EXPECT_GE(r.analysis.verbatim_ranges, 1u);  // the interleaved data blobs
  auto suite = run_suite(*w, r.image);
  EXPECT_EQ(suite.passed, suite.total);
}

TEST(Workload, SizeRatiosMirrorThePaper) {
  // libjvm ~5x libc; apache ~0.4x libc (by function count).
  auto libc = libc_like_spec();
  auto jvm = libjvm_like_spec();
  auto apache = apache_like_spec();
  EXPECT_EQ(jvm.functions, libc.functions * 5);
  EXPECT_LT(apache.functions, libc.functions / 2);
}

TEST(Workload, RejectsBadSpecs) {
  WorkloadSpec s;
  s.functions = 0;
  EXPECT_FALSE(make_workload(s).ok());
}

TEST(SharedWorkload, BuildsAndSelfTests) {
  WorkloadSpec spec = apache_like_spec();
  spec.functions = 36;
  auto w = make_shared_workload(spec, 3);
  ASSERT_TRUE(w.ok()) << w.error().message;
  EXPECT_EQ(w->libraries.size(), 3u);
  EXPECT_EQ(w->unit_tests.size(), 36u);
  for (const auto& lib : w->libraries) {
    EXPECT_TRUE(lib.library);
    EXPECT_EQ(lib.exports.size(), 1u);
  }
  // Original set passes its own suite trivially.
  std::vector<zelf::Image> same{w->main_image};
  for (const auto& lib : w->libraries) same.push_back(lib);
  auto r = run_shared_suite(*w, same);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r->passed, r->total);
}

TEST(SharedWorkload, IndependentlyRewrittenSetPassesSuite) {
  // The paper's Apache claim: rewrite the main binary AND each shared
  // library separately; the transformed set inter-operates.
  WorkloadSpec spec = apache_like_spec();
  spec.functions = 48;
  auto w = make_shared_workload(spec, 2);
  ASSERT_TRUE(w.ok()) << w.error().message;

  std::vector<zelf::Image> replacement;
  RewriteOptions main_opts;  // Null
  replacement.push_back(must_rewrite(w->main_image, main_opts).image);
  std::uint64_t seed = 11;
  for (const auto& lib : w->libraries) {
    RewriteOptions lib_opts;
    lib_opts.seed = seed++;
    lib_opts.placement = rewriter::PlacementKind::kDiversity;
    replacement.push_back(must_rewrite(lib, lib_opts).image);
  }
  auto suite = run_shared_suite(*w, replacement);
  ASSERT_TRUE(suite.ok()) << suite.error().message;
  EXPECT_EQ(suite->passed, suite->total) << suite->total - suite->passed << " regressed";
}

TEST(SharedWorkload, RejectsBadShapes) {
  WorkloadSpec spec = apache_like_spec();
  EXPECT_FALSE(make_shared_workload(spec, 0).ok());
  EXPECT_FALSE(make_shared_workload(spec, 9).ok());
  spec.functions = 1;
  EXPECT_FALSE(make_shared_workload(spec, 2).ok());
}

}  // namespace
}  // namespace zipr::cgc
