// Shared-library support: assembling libraries, linking, and -- the
// paper's Apache scenario -- rewriting the executable and its libraries
// INDEPENDENTLY and running the transformed set together.
#include <gtest/gtest.h>

#include "testing_util.h"
#include "vm/link.h"
#include "zelf/io.h"

namespace zipr {
namespace {

using ::zipr::testing::must_rewrite;

// Library: exports two functions; lives at its own addresses.
const char* kMathLibSrc = R"(
  .library
  .text
  .export lib_double
  .func lib_double
    add r1, r1
    ret
  .export lib_mix
  .func lib_mix
    mov r2, r1
    mul r1, r2
    addi r1, 13
    call internal_helper     ; NOT exported: private to the library
    ret
  .func internal_helper
    xori r1, 0x5a
    ret
)";

// Executable: imports both, computes f(x) = lib_mix(lib_double(x)).
const char* kMainSrc = R"(
  .entry main
  .text
  main:
    movi r0, 3
    movi r1, 0
    movi r2, buf
    movi r3, 1
    syscall
    load8 r1, [r2]
    movi r6, got_double
    load r6, [r6]
    callr r6
    movi r6, got_mix
    load r6, [r6]
    callr r6
    movi r2, buf
    store [r2], r1
    movi r0, 2
    movi r1, 1
    movi r3, 8
    syscall
    movi r0, 1
    movi r1, 0
    syscall
  .data
  .import got_double, lib_double
  .import got_mix, lib_mix
  .bss
  buf: .space 8
)";

assembler::Options lib_bases() {
  assembler::Options o;
  o.text_base = 0x900000;
  o.rodata_base = 0xa00000;
  o.data_base = 0xa80000;
  o.bss_base = 0xb00000;
  return o;
}

zelf::Image must_assemble_lib(std::string_view src) {
  auto img = assembler::assemble(src, lib_bases());
  EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error().message);
  return std::move(img).value();
}

TEST(Library, AssemblesWithExports) {
  zelf::Image lib = must_assemble_lib(kMathLibSrc);
  EXPECT_TRUE(lib.library);
  EXPECT_EQ(lib.entry, 0u);
  ASSERT_EQ(lib.exports.size(), 2u);
  EXPECT_EQ(lib.exports[0].name, "lib_double");
  EXPECT_EQ(lib.exports[0].addr, 0x900000u);
  EXPECT_TRUE(lib.validate().ok());
}

TEST(Library, ExecutableRecordsImports) {
  zelf::Image main = ::zipr::testing::must_assemble(kMainSrc);
  ASSERT_EQ(main.imports.size(), 2u);
  EXPECT_EQ(main.imports[0].name, "lib_double");
  EXPECT_EQ(main.imports[0].slot, zelf::layout::kDataBase);
  EXPECT_EQ(main.imports[1].slot, zelf::layout::kDataBase + 8);
}

TEST(Library, RoundTripsThroughZelf) {
  zelf::Image lib = must_assemble_lib(kMathLibSrc);
  auto back = zelf::read_image(zelf::write_image(lib));
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_TRUE(back->library);
  EXPECT_EQ(back->exports.size(), 2u);
  EXPECT_EQ(back->exports[1].name, "lib_mix");
  zelf::Image main = ::zipr::testing::must_assemble(kMainSrc);
  auto main_back = zelf::read_image(zelf::write_image(main));
  ASSERT_TRUE(main_back.ok());
  EXPECT_EQ(main_back->imports.size(), 2u);
}

std::int64_t expected_result(std::uint8_t x) {
  std::uint64_t v = 2ull * x;
  v = v * v + 13;
  v ^= 0x5a;
  return static_cast<std::int64_t>(v & 0xffffffffffffffffull);
}

TEST(Link, BindsAndRuns) {
  auto linked = vm::link({::zipr::testing::must_assemble(kMainSrc),
                          must_assemble_lib(kMathLibSrc)});
  ASSERT_TRUE(linked.ok()) << linked.error().message;
  for (std::uint8_t x : {std::uint8_t{0}, std::uint8_t{5}, std::uint8_t{200}}) {
    auto r = vm::run_linked(*linked, Bytes{x});
    ASSERT_TRUE(r.exited);
    ASSERT_EQ(r.output.size(), 8u);
    EXPECT_EQ(static_cast<std::int64_t>(get_u64(r.output, 0)), expected_result(x)) << int(x);
  }
}

TEST(Link, ErrorCases) {
  zelf::Image main = ::zipr::testing::must_assemble(kMainSrc);
  zelf::Image lib = must_assemble_lib(kMathLibSrc);

  // Missing library -> unresolved import.
  EXPECT_FALSE(vm::link({main}).ok());
  // A library cannot come first.
  EXPECT_FALSE(vm::link({lib, main}).ok());
  // Duplicate exports.
  EXPECT_FALSE(vm::link({main, lib, lib}).ok());
  // Overlapping images.
  zelf::Image clash = ::zipr::testing::must_assemble(
      ".entry m\n.text\nm: movi r0, 1\nmovi r1, 0\nsyscall\n");
  zelf::Image overlapping_lib = lib;
  for (auto& seg : overlapping_lib.segments) seg.vaddr = clash.text().vaddr;
  EXPECT_FALSE(vm::link({clash, overlapping_lib}).ok());
}

TEST(Link, RejectsBssImportSlot) {
  auto img = assembler::assemble(R"(
    .entry m
    .text
    m: hlt
    .data
    .import slot_ok, something
  )");
  ASSERT_TRUE(img.ok());
  // Force the slot out of file-backed bytes.
  img->imports[0].slot = zelf::layout::kBssBase;
  zelf::Segment bss;
  bss.kind = zelf::SegKind::kBss;
  bss.vaddr = zelf::layout::kBssBase;
  bss.memsize = 16;
  img->segments.push_back(bss);
  zelf::Image lib = must_assemble_lib(".library\n.text\n.export something\nsomething: ret\n");
  EXPECT_FALSE(vm::link({*img, lib}).ok());
}

TEST(Library, ImportOutsideDataRejected) {
  auto img = assembler::assemble(".entry m\n.text\n.import s, f\nm: hlt\n");
  EXPECT_FALSE(img.ok());
}

TEST(Library, LibraryWithEntryRejected) {
  auto img = assembler::assemble(".library\n.entry m\n.text\nm: ret\n");
  EXPECT_FALSE(img.ok());
}

TEST(Library, UndefinedExportRejected) {
  auto img = assembler::assemble(".library\n.text\n.export ghost\nf: ret\n");
  EXPECT_FALSE(img.ok());
}

// ---- the paper's Apache experiment shape ----

struct LibRewriteCase {
  const char* name;
  std::vector<std::string> main_transforms;
  std::vector<std::string> lib_transforms;
  rewriter::PlacementKind lib_placement;
};

class IndependentRewriteTest : public ::testing::TestWithParam<LibRewriteCase> {};

TEST_P(IndependentRewriteTest, TransformedImagesInterOperate) {
  const auto& param = GetParam();
  zelf::Image main = ::zipr::testing::must_assemble(kMainSrc);
  zelf::Image lib = must_assemble_lib(kMathLibSrc);

  // Rewrite each image in isolation -- neither rewrite sees the other.
  RewriteOptions main_opts;
  main_opts.transforms = param.main_transforms;
  auto new_main = must_rewrite(main, main_opts);

  RewriteOptions lib_opts;
  lib_opts.transforms = param.lib_transforms;
  lib_opts.placement = param.lib_placement;
  lib_opts.seed = 77;
  auto new_lib = must_rewrite(lib, lib_opts);
  EXPECT_TRUE(new_lib.image.library);
  EXPECT_EQ(new_lib.image.exports.size(), 2u);

  auto orig = vm::link({main, lib});
  auto both = vm::link({new_main.image, new_lib.image});
  auto mixed = vm::link({main, new_lib.image});  // old main, new lib
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(both.ok()) << both.error().message;
  ASSERT_TRUE(mixed.ok());

  for (std::uint8_t x : {std::uint8_t{1}, std::uint8_t{42}, std::uint8_t{255}}) {
    auto a = vm::run_linked(*orig, Bytes{x});
    auto b = vm::run_linked(*both, Bytes{x});
    auto c = vm::run_linked(*mixed, Bytes{x});
    EXPECT_EQ(a.output, b.output) << param.name << " x=" << int(x);
    EXPECT_EQ(a.output, c.output) << param.name << " (mixed) x=" << int(x);
    EXPECT_EQ(a.exit_status, b.exit_status);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IndependentRewriteTest,
    ::testing::Values(
        LibRewriteCase{"NullNull", {}, {}, rewriter::PlacementKind::kNearfit},
        LibRewriteCase{"CfiBoth", {"cfi"}, {"cfi"}, rewriter::PlacementKind::kNearfit},
        LibRewriteCase{"DiverseLib", {}, {}, rewriter::PlacementKind::kDiversity},
        LibRewriteCase{"FullStack",
                       {"cfi", "canary"},
                       {"cfi", "canary"},
                       rewriter::PlacementKind::kPinPage}),
    [](const ::testing::TestParamInfo<LibRewriteCase>& info) { return info.param.name; });

TEST(LibraryRewrite, ExportsArePinnedAndPreserved) {
  zelf::Image lib = must_assemble_lib(kMathLibSrc);
  auto r = must_rewrite(lib, {});
  // The rewritten library's export table is unchanged: callers bound to
  // the original addresses must still work.
  ASSERT_EQ(r.image.exports.size(), lib.exports.size());
  for (std::size_t i = 0; i < lib.exports.size(); ++i)
    EXPECT_EQ(r.image.exports[i].addr, lib.exports[i].addr);
  // Each export address holds either a reference (2- or 5-byte jump) or,
  // when pin-site coalescing kept the function at its original address,
  // the function's own first instruction.
  for (const auto& exp : lib.exports) {
    std::size_t off = static_cast<std::size_t>(exp.addr - lib.text().vaddr);
    Byte op = r.image.text().bytes[off];
    Byte orig = lib.text().bytes[off];
    EXPECT_TRUE(op == 0xEB || op == 0xE9 || op == orig) << exp.name << ": " << int(op);
  }
}

}  // namespace
}  // namespace zipr
