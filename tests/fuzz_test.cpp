// Tests for the coverage-guided fuzzing subsystem: the "cov" transform
// (behaviour preservation + map recording), the persistent-mode executor
// (snapshot/restore determinism and isolation), the mutation engine, and
// the fuzzer core (planted-bug rediscovery, worker-count independence,
// trimming, crash triage).
#include <gtest/gtest.h>

#include <algorithm>

#include "cgc/exploits.h"
#include "fuzz/fuzzer.h"
#include "fuzz/mutator.h"
#include "testing_util.h"
#include "transform/api.h"
#include "transform/cov.h"

namespace zipr::fuzz {
namespace {

using ::zipr::testing::expect_equivalent;
using ::zipr::testing::must_assemble;
using ::zipr::testing::must_rewrite;

// A program whose path depends on its input: branches, a loop, a call.
const char* kBranchy = R"(
    .entry main
    .text
    main:
      movi r0, 3
      movi r1, 0
      movi r2, inbuf
      movi r3, 8
      syscall
      movi r6, inbuf
      load r1, [r6]
      cmpi r1, 100
      jlt small
      movi r2, 2
      jmp join
    small:
      movi r2, 1
    join:
      movi r3, 0
    loop:
      addi r3, 1
      cmp r3, r2
      jlt loop
      call emit
      movi r0, 1
      movi r1, 0
      syscall
    emit:
      movi r0, 2
      movi r1, 1
      movi r2, msg
      movi r3, 3
      syscall
      ret
    .rodata
    msg: .ascii "ok\n"
    .bss
    inbuf: .space 8
)";

zelf::Image instrument(const zelf::Image& img, const std::string& transform = "cov",
                       std::uint64_t seed = 1) {
  RewriteOptions opts;
  opts.transforms = {transform};
  opts.seed = seed;
  return must_rewrite(img, opts).image;
}

Bytes le64(std::uint64_t v) {
  Bytes b;
  put_u64(b, v);
  return b;
}

// ---- the "cov" transform ----

TEST(CovTransform, PreservesBehaviourAndRecordsCoverage) {
  auto img = must_assemble(kBranchy);
  auto cov = instrument(img);
  for (std::uint64_t v : {0ull, 50ull, 100ull, 200ull})
    expect_equivalent(img, cov, le64(v));

  Executor ex(cov);
  ASSERT_TRUE(ex.instrumented());
  auto res = ex.execute(le64(50));
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->run.exited);
  EXPECT_FALSE(res->crashed);
  EXPECT_GT(std::count_if(res->map.begin(), res->map.end(), [](Byte b) { return b != 0; }), 0);
}

TEST(CovTransform, BlockModeAlsoWorks) {
  auto img = must_assemble(kBranchy);
  auto cov = instrument(img, "cov-block");
  expect_equivalent(img, cov, le64(7));

  Executor ex(cov);
  ASSERT_TRUE(ex.instrumented());
  auto res = ex.execute(le64(7));
  ASSERT_TRUE(res.ok());
  EXPECT_GT(std::count_if(res->map.begin(), res->map.end(), [](Byte b) { return b != 0; }), 0);
}

TEST(CovTransform, DistinctPathsDistinctMaps) {
  auto cov = instrument(must_assemble(kBranchy));
  Executor ex(cov);
  auto a = ex.execute(le64(5));    // takes the `small` side
  auto b = ex.execute(le64(200));  // takes the other side + longer loop
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(path_hash(a->map), path_hash(b->map));
}

TEST(CovTransform, UninstrumentedImageReportsZeroMap) {
  auto img = must_assemble(kBranchy);
  Executor ex(img);
  EXPECT_FALSE(ex.instrumented());
  auto res = ex.execute(le64(5));
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->run.exited);
  EXPECT_EQ(std::count_if(res->map.begin(), res->map.end(), [](Byte b) { return b != 0; }), 0);
}

// Satellite (d): the coverage-map segment must survive every placement
// strategy x seed combination -- reassembly's final image validation would
// reject a text/overflow layout growing into the added segment, so a
// clean validate() + identical behaviour proves no silent overlap.
TEST(CovTransform, MapSegmentSurvivesAllPlacements) {
  auto img = must_assemble(kBranchy);
  const auto map_base = transform::cov_map_base(img.text().vaddr);
  for (auto placement : {rewriter::PlacementKind::kNearfit, rewriter::PlacementKind::kDiversity,
                         rewriter::PlacementKind::kPinPage}) {
    for (std::uint64_t seed : {1ull, 7ull, 1234ull}) {
      RewriteOptions opts;
      opts.transforms = {"cov"};
      opts.placement = placement;
      opts.seed = seed;
      auto cov = must_rewrite(img, opts).image;
      ASSERT_TRUE(cov.validate().ok()) << "placement " << static_cast<int>(placement)
                                       << " seed " << seed;
      const zelf::Segment* seg = cov.segment_containing(map_base);
      ASSERT_NE(seg, nullptr);
      EXPECT_EQ(seg->vaddr, map_base);
      EXPECT_GE(seg->memsize, transform::kCovSegBytes);
      expect_equivalent(img, cov, le64(123));
    }
  }
}

// ---- registry / context hardening (satellites b, c) ----

TEST(Registry, CovTransformsRegistered) {
  auto names = transform::registered_transforms();
  for (const char* want : {"cov", "cov-block"})
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end()) << want;
}

TEST(Registry, UnknownNameErrorListsRegistered) {
  auto t = transform::make_transform("definitely-not-registered");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.error().kind, Error::Kind::kNotFound);
  EXPECT_NE(t.error().message.find("registered:"), std::string::npos) << t.error().message;
  EXPECT_NE(t.error().message.find("cov"), std::string::npos) << t.error().message;
  EXPECT_NE(t.error().message.find("cfi"), std::string::npos) << t.error().message;
}

TEST(Context, AddSegmentOverlapErrorNamesBothRanges) {
  auto img = must_assemble(".entry m\n.text\nm: hlt\n");
  auto prog = analysis::build_ir(img);
  ASSERT_TRUE(prog.ok());
  transform::TransformContext ctx(*prog, 1);
  zelf::Segment seg;
  seg.kind = zelf::SegKind::kRodata;
  seg.vaddr = img.text().end() - 1;  // straddles the end of text
  seg.memsize = 32;
  seg.bytes = Bytes(32, 0);
  const std::uint64_t want_lo = seg.vaddr;
  const std::uint64_t want_hi = seg.vaddr + seg.memsize;
  Status s = ctx.add_segment(std::move(seg));
  ASSERT_FALSE(s.ok());
  // Both the requested range and the conflicting text range, as [lo, hi).
  EXPECT_NE(s.error().message.find(hex_addr(want_lo)), std::string::npos) << s.error().message;
  EXPECT_NE(s.error().message.find(hex_addr(want_hi)), std::string::npos) << s.error().message;
  EXPECT_NE(s.error().message.find(hex_addr(img.text().vaddr)), std::string::npos)
      << s.error().message;
  EXPECT_NE(s.error().message.find(hex_addr(img.text().end())), std::string::npos)
      << s.error().message;
}

// ---- the persistent-mode executor ----

TEST(Executor, RepeatedRunsAreIdentical) {
  auto cov = instrument(must_assemble(kBranchy));
  Executor ex(cov);
  auto a = ex.execute(le64(42), 7);
  auto b = ex.execute(le64(42), 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->run.output, b->run.output);
  EXPECT_EQ(a->run.stats.insns, b->run.stats.insns);
  EXPECT_EQ(a->map, b->map);
  EXPECT_EQ(ex.resets(), 1u);  // first run needs no reset
}

TEST(Executor, MatchesAFreshExecutor) {
  auto cov = instrument(must_assemble(kBranchy));
  Executor warm(cov);
  ASSERT_TRUE(warm.execute(le64(1)).ok());   // dirty the machine
  ASSERT_TRUE(warm.execute(le64(200)).ok());
  auto warm_res = warm.execute(le64(42));
  Executor fresh(cov);
  auto fresh_res = fresh.execute(le64(42));
  ASSERT_TRUE(warm_res.ok() && fresh_res.ok());
  EXPECT_EQ(warm_res->run.output, fresh_res->run.output);
  EXPECT_EQ(warm_res->map, fresh_res->map);
  EXPECT_EQ(warm_res->run.stats.insns, fresh_res->run.stats.insns);
}

TEST(Executor, CrashDoesNotLeakIntoNextRun) {
  auto vulns = cgc::vulnerable_corpus();
  const auto& fptr = vulns[0];
  auto cov = instrument(fptr.image);
  Executor ex(cov);
  // Hijack the fptr to an unmapped address: the run must fault...
  auto crash = ex.execute(le64(0xdead0000), 0);
  ASSERT_TRUE(crash.ok());
  EXPECT_TRUE(crash->crashed);
  // ...and the next benign run must be indistinguishable from a fresh VM.
  auto after = ex.execute(fptr.benign_input, 0);
  Executor fresh(cov);
  auto clean = fresh.execute(fptr.benign_input, 0);
  ASSERT_TRUE(after.ok() && clean.ok());
  EXPECT_FALSE(after->crashed);
  EXPECT_EQ(after->run.output, clean->run.output);
  EXPECT_EQ(after->map, clean->map);
}

// ---- the mutation engine ----

TEST(Mutator, DeterministicStagesArePureFunctions) {
  Bytes input{1, 2, 3, 4};
  const std::size_t n = det_count(input.size());
  ASSERT_GT(n, 0u);
  std::size_t noops = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Bytes a = det_mutate(input, i);
    Bytes b = det_mutate(input, i);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), input.size());
    if (a == input) ++noops;
  }
  // Only the interesting-constants sub-stage can be a no-op (when the
  // constant happens to equal the byte already there): at most one of the
  // nine constants per byte.
  EXPECT_LE(noops, input.size());
  // The first 8 mutations are single-bit flips of byte 0.
  EXPECT_EQ(det_mutate(input, 0)[0], 1 ^ 1);
  EXPECT_EQ(det_mutate(input, 3)[0], 1 ^ 8);
}

TEST(Mutator, HavocIsSeedDeterministicAndCanGrow) {
  Bytes input{'p', 'i', 'n', 'g'};
  Rng r1(99), r2(99);
  EXPECT_EQ(havoc_mutate(input, r1), havoc_mutate(input, r2));

  Rng rng(1);
  std::size_t biggest = 0;
  for (int i = 0; i < 200; ++i)
    biggest = std::max(biggest, havoc_mutate(input, rng).size());
  EXPECT_GT(biggest, 40u) << "havoc never grew a 4-byte input past a stack frame";
}

TEST(Mutator, SpliceCombinesBothParents) {
  Bytes a(16, 0xAA), b(16, 0xBB);
  Rng rng(5);
  // Across a few seeds the child should not always equal a pure havoc of `a`.
  bool saw_b_bytes = false;
  for (int i = 0; i < 20 && !saw_b_bytes; ++i) {
    Bytes child = splice_mutate(a, b, rng);
    saw_b_bytes = std::find(child.begin(), child.end(), 0xBB) != child.end();
  }
  EXPECT_TRUE(saw_b_bytes);
}

// ---- the fuzzer core ----

FuzzOptions smoke_opts(std::uint64_t max_execs, int jobs = 1) {
  FuzzOptions opts;
  opts.seed = 7;
  opts.jobs = jobs;
  opts.max_execs = max_execs;
  return opts;
}

// The headline smoke gate: a tiny deterministic budget rediscovers the
// planted function-pointer bug from its benign seed alone.
TEST(FuzzSmoke, RediscoversPlantedFptrBug) {
  auto vulns = cgc::vulnerable_corpus();
  const auto& fptr = vulns[0];
  auto cov = instrument(fptr.image);
  auto result = fuzz(cov, {fptr.benign_input}, smoke_opts(1200));
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->crashes.size(), 1u);
  // The crashing input must also take down the ORIGINAL binary.
  auto replay = vm::run_program(fptr.image, result->crashes[0].input);
  EXPECT_FALSE(replay.exited);
  EXPECT_NE(replay.fault, vm::Fault::kGasExhausted);
}

TEST(Fuzzer, RediscoversEveryPlantedBug) {
  for (const auto& vuln : cgc::vulnerable_corpus()) {
    // Magic-gated CBs are hopeless for plain coverage (see the laf_test
    // differential); stack compare-splitting under the coverage pass.
    RewriteOptions opts;
    opts.transforms = vuln.laf_gated ? std::vector<std::string>{"laf", "cov"}
                                     : std::vector<std::string>{"cov"};
    auto cov = must_rewrite(vuln.image, opts).image;
    auto result = fuzz(cov, {vuln.benign_input}, smoke_opts(6000));
    ASSERT_TRUE(result.ok()) << vuln.name;
    ASSERT_GE(result->crashes.size(), 1u) << vuln.name << ": no crash within budget";
    bool replays = false;
    for (const auto& crash : result->crashes) {
      auto replay = vm::run_program(vuln.image, crash.input);
      replays |= !replay.exited && replay.fault != vm::Fault::kGasExhausted;
    }
    EXPECT_TRUE(replays) << vuln.name << ": no crash replays on the uninstrumented binary";
    // Satellite visibility: every admission/crash is attributed to a
    // stage, and the seed stage accounts for exactly the seed entries.
    const auto& st = result->stats.stages;
    std::uint64_t admitted = 0, crashed = 0;
    for (std::size_t i = 0; i < kStageCount; ++i) {
      admitted += st.admitted[i];
      crashed += st.crashes[i];
    }
    EXPECT_EQ(admitted, result->corpus.size()) << vuln.name;
    EXPECT_EQ(crashed, result->crashes.size()) << vuln.name;
    EXPECT_GE(st.admitted[static_cast<std::size_t>(MutationStage::kSeed)], 1u) << vuln.name;
  }
}

TEST(Fuzzer, WorkerCountDoesNotChangeResults) {
  auto vulns = cgc::vulnerable_corpus();
  const auto& table = vulns[2];
  auto cov = instrument(table.image);
  auto serial = fuzz(cov, {table.benign_input}, smoke_opts(2000, 1));
  auto parallel = fuzz(cov, {table.benign_input}, smoke_opts(2000, 4));
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(serial->stats.execs, parallel->stats.execs);
  EXPECT_EQ(serial->stats.rounds, parallel->stats.rounds);
  ASSERT_EQ(serial->crashes.size(), parallel->crashes.size());
  for (std::size_t i = 0; i < serial->crashes.size(); ++i) {
    EXPECT_EQ(serial->crashes[i].fault, parallel->crashes[i].fault);
    EXPECT_EQ(serial->crashes[i].fault_pc, parallel->crashes[i].fault_pc);
    EXPECT_EQ(serial->crashes[i].path, parallel->crashes[i].path);
    EXPECT_EQ(serial->crashes[i].input, parallel->crashes[i].input);
  }
  ASSERT_EQ(serial->corpus.size(), parallel->corpus.size());
  for (std::size_t i = 0; i < serial->corpus.size(); ++i)
    EXPECT_EQ(serial->corpus[i].input, parallel->corpus[i].input);
}

TEST(Fuzzer, SameSpecSameCampaign) {
  auto cov = instrument(must_assemble(kBranchy));
  auto a = fuzz(cov, {le64(5)}, smoke_opts(800));
  auto b = fuzz(cov, {le64(5)}, smoke_opts(800));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->stats.execs, b->stats.execs);
  ASSERT_EQ(a->corpus.size(), b->corpus.size());
  for (std::size_t i = 0; i < a->corpus.size(); ++i)
    EXPECT_EQ(a->corpus[i].input, b->corpus[i].input);
}

TEST(Fuzzer, TrimsUnreadTailOffSeeds) {
  // kBranchy reads exactly 8 bytes; a 64-byte seed should be admitted as
  // its 8 consumed bytes (proven path-identical via the insns_by_pc hook).
  auto cov = instrument(must_assemble(kBranchy));
  Bytes fat(64, 9);
  auto result = fuzz(cov, {fat}, smoke_opts(1));
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->corpus.size(), 1u);
  EXPECT_EQ(result->corpus[0].input.size(), 8u);
}

TEST(Fuzzer, CrashTriageDeduplicates) {
  auto vulns = cgc::vulnerable_corpus();
  const auto& fptr = vulns[0];
  auto cov = instrument(fptr.image);
  auto result = fuzz(cov, {fptr.benign_input}, smoke_opts(3000));
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->crashes.size(), 1u);
  // Triage keys are unique and sorted.
  for (std::size_t i = 1; i < result->crashes.size(); ++i) {
    auto key = [](const Crash& c) { return std::tuple(c.fault, c.fault_pc, c.path); };
    EXPECT_LT(key(result->crashes[i - 1]), key(result->crashes[i]));
  }
  // Far fewer unique crashes than crashing executions: thousands of
  // mutants fault, the triage buckets them by (fault, normalized pc,
  // path) -- wild attacker-chosen targets collapse to one pc.
  EXPECT_GE(result->stats.crashing_execs, result->crashes.size());
  EXPECT_LT(result->crashes.size() * 5, result->stats.crashing_execs);
}

}  // namespace
}  // namespace zipr::fuzz
