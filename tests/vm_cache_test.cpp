// Differential tests for the VM's predecoded-instruction cache: the cached
// and uncached interpreters must be observably identical -- exit status,
// fault kind and pc, every statistic (including the touched-page MaxRSS
// metric), output bytes and input consumption -- across the full 62-CB
// evaluation corpus, the vulnerable corpus (benign and exploit inputs),
// and fuzz-style garbage inputs. Plus regression tests for every cache
// invalidation edge: writes to cached executable pages, snapshot-restore
// rolling back a dirtied executable page, and map_segment() overlaying a
// cached page.
#include <gtest/gtest.h>

#include <array>
#include <string>

#include "asm/assembler.h"
#include "cgc/exploits.h"
#include "cgc/generator.h"
#include "cgc/poller.h"
#include "support/rng.h"
#include "vm/machine.h"

namespace zipr::vm {
namespace {

zelf::Image build(std::string_view src) {
  auto img = assembler::assemble(src);
  EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error().message);
  return std::move(img).value();
}

RunResult run_image(const zelf::Image& img, ByteView input, std::uint64_t seed,
                    bool cache) {
  Machine m(img);
  m.set_decode_cache(cache);
  m.set_input(Bytes(input.begin(), input.end()));
  m.set_random_seed(seed);
  return m.run();
}

/// The acceptance bar: every observable field identical.
void expect_same(const RunResult& on, const RunResult& off, const std::string& what) {
  EXPECT_EQ(on.exited, off.exited) << what;
  EXPECT_EQ(on.exit_status, off.exit_status) << what;
  EXPECT_EQ(on.fault, off.fault) << what;
  EXPECT_EQ(on.fault_pc, off.fault_pc) << what;
  EXPECT_EQ(on.stats.insns, off.stats.insns) << what;
  EXPECT_EQ(on.stats.cycles, off.stats.cycles) << what;
  EXPECT_EQ(on.stats.syscalls, off.stats.syscalls) << what;
  EXPECT_EQ(on.stats.max_rss_pages, off.stats.max_rss_pages) << what;
  EXPECT_EQ(on.output, off.output) << what;
  EXPECT_EQ(on.input_bytes_consumed, off.input_bytes_consumed) << what;
}

TEST(VmCacheDifferential, CfeCorpusPollsAndGarbageIdentical) {
  int checked = 0;
  for (const auto& spec : cgc::cfe_corpus()) {
    auto cb = cgc::generate_cb(spec);
    ASSERT_TRUE(cb.ok()) << spec.name;
    auto polls = cgc::make_polls(*cb, 2, 0xC0FFEE ^ spec.seed);
    for (std::size_t pi = 0; pi < polls.size(); ++pi) {
      auto on = run_image(cb->image, polls[pi].input, polls[pi].vm_seed, true);
      auto off = run_image(cb->image, polls[pi].input, polls[pi].vm_seed, false);
      expect_same(on, off, spec.name + " poll " + std::to_string(pi));
      ++checked;
    }
    // A fuzz-style garbage input: exercises the error/fault paths too.
    Rng rng(spec.seed * 7919 + 17);
    Bytes junk;
    const std::size_t n = rng.range(1, 64);
    for (std::size_t i = 0; i < n; ++i) junk.push_back(static_cast<Byte>(rng.next() & 0xff));
    expect_same(run_image(cb->image, junk, 1, true), run_image(cb->image, junk, 1, false),
                spec.name + " junk");
    ++checked;
  }
  EXPECT_GE(checked, 3 * 62);  // the full evaluation corpus really ran
}

TEST(VmCacheDifferential, VulnerableCorpusBenignAndExploitIdentical) {
  for (const auto& v : cgc::vulnerable_corpus()) {
    expect_same(run_image(v.image, v.benign_input, 0, true),
                run_image(v.image, v.benign_input, 0, false), v.name + " benign");
    expect_same(run_image(v.image, v.exploit_input, 0, true),
                run_image(v.image, v.exploit_input, 0, false), v.name + " exploit");
  }
}

// ---- invalidation regressions -------------------------------------------
//
// A trampoline in text jumps straight to a scratch rwx page at 0x500000
// whose contents the tests rewrite between runs; the exit status reveals
// which version of the code actually executed.

constexpr const char* kTrampoline = R"(
  .entry main
  .text
  main:
    movi r2, 5242880   ; 0x500000, the rwx scratch page
    jmpr r2
)";

constexpr std::uint64_t kScratch = 0x500000;

Bytes exit_with(int status) {
  auto src = std::string(".entry main\n.text\nmain:\n  movi r0, 1\n  movi r1, ") +
             std::to_string(status) + "\n  syscall\n";
  return build(src).text().bytes;
}

/// run codeA; restore + overwrite with codeB (write invalidation); run;
/// restore (rolls the dirtied exec page back to codeA); run again.
std::array<RunResult, 3> self_modify_sequence(bool cache) {
  Machine m(build(kTrampoline));
  m.set_decode_cache(cache);
  m.memory().map_anon(kScratch, kPageSize, kPermRead | kPermWrite | kPermExec);
  EXPECT_TRUE(m.memory().write_block(kScratch, exit_with(7)).ok());
  auto snap = m.snapshot();

  std::array<RunResult, 3> rs;
  rs[0] = m.run();
  EXPECT_TRUE(m.restore(snap).ok());
  EXPECT_TRUE(m.memory().write_block(kScratch, exit_with(9)).ok());
  rs[1] = m.run();
  EXPECT_TRUE(m.restore(snap).ok());
  rs[2] = m.run();
  return rs;
}

TEST(VmCacheInvalidation, WriteAndRestoreOfExecPage) {
  auto on = self_modify_sequence(true);
  EXPECT_EQ(on[0].exit_status, 7);  // original code
  EXPECT_EQ(on[1].exit_status, 9);  // write to a cached exec page took effect
  EXPECT_EQ(on[2].exit_status, 7);  // restore rolled the exec page back
  auto off = self_modify_sequence(false);
  for (int i = 0; i < 3; ++i)
    expect_same(on[i], off[i], "self-modify run " + std::to_string(i));
}

TEST(VmCacheInvalidation, MapSegmentOverCachedPage) {
  for (bool cache : {true, false}) {
    Machine m(build(".entry main\n.text\nmain:\n  movi r0, 1\n  movi r1, 7\n  syscall\n"));
    m.set_decode_cache(cache);
    auto snap = m.snapshot();
    auto r1 = m.run();
    EXPECT_EQ(r1.exit_status, 7) << "cache=" << cache;

    ASSERT_TRUE(m.restore(snap).ok());
    zelf::Segment seg;  // overlay new code on the (cached) text page
    seg.kind = zelf::SegKind::kText;
    seg.vaddr = zelf::layout::kTextBase;
    seg.bytes = exit_with(9);
    seg.memsize = seg.bytes.size();
    m.memory().map_segment(seg);
    auto r2 = m.run();
    EXPECT_EQ(r2.exit_status, 9) << "cache=" << cache;
  }
}

// Restores that touched no executable page must keep decode tables warm:
// that is the fuzzing steady state (code_epoch is the cache's validity key,
// so "epoch unchanged" == "cache survived").
TEST(VmCacheInvalidation, DataOnlyRestoreKeepsCodeEpoch) {
  Machine m(build(R"(
    .entry main
    .text
    main:
      movi r2, 7864320   ; 0x780000 bss
      movi r3, 1
      store8 [r2], r3    ; dirty a data page
      movi r0, 1
      movi r1, 0
      syscall
    .bss
    buf: .space 4096
  )"));
  auto snap = m.snapshot();
  auto r1 = m.run();
  ASSERT_TRUE(r1.exited);
  const std::uint64_t epoch_after_run = m.memory().code_epoch();
  ASSERT_TRUE(m.restore(snap).ok());
  EXPECT_EQ(m.memory().code_epoch(), epoch_after_run);
  auto r2 = m.run();
  expect_same(r1, r2, "rerun after data-only restore");
}

}  // namespace
}  // namespace zipr::vm
