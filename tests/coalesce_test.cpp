// Tests for fallthrough dollop coalescing (paper Sec. III): elision must be
// invisible to execution (same behaviour, same non-jump trace), visible in
// the stats, and dead overflow pads (unused frontier trampolines) must be
// reclaimed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ir_builder.h"
#include "cgc/generator.h"
#include "cgc/poller.h"
#include "testing_util.h"
#include "vm/machine.h"
#include "zipr/reassembler.h"
#include "zipr/zipr.h"

namespace zipr {
namespace rewriter {

/// Friend of Reassembler: drives private pieces (reference-width policy,
/// pin resolution, the memory space) directly for regression tests.
class ReassemblerTestPeer {
 public:
  static MemorySpace& space(Reassembler& r) { return r.space_; }

  static isa::BranchWidth ref_width(const Reassembler& r, std::uint64_t site,
                                    std::uint64_t target, bool can_short, bool glue) {
    return r.ref_width(site, target, can_short, glue);
  }

  static Status resolve_squeezed_pin(Reassembler& r, std::uint64_t addr, irdb::InsnId target,
                                     std::uint64_t trampoline, bool trampoline_in_overflow) {
    Reassembler::PinSite pin;
    pin.addr = addr;
    pin.reserved = 2;
    pin.target = target;
    pin.trampoline = trampoline;
    pin.trampoline_in_overflow = trampoline_in_overflow;
    return r.resolve_pin(pin);
  }
};

}  // namespace rewriter

namespace {

using cgc::cfe_corpus;
using cgc::generate_cb;
using cgc::make_polls;
using cgc::run_poll;
using rewriter::PlacementKind;
using rewriter::ReassemblerTestPeer;
using ::zipr::testing::Behaviour;
using ::zipr::testing::behaviour_of;
using ::zipr::testing::must_assemble;
using ::zipr::testing::must_rewrite;

// A function-pointer-driven program: the pinned entry points give pin-site
// coalescing something to elide, and the loop exercises the rewritten
// control flow.
constexpr const char* kPinnedFuncsSrc = R"(
  .entry main
  .text
  main:
    movi r2, 0
    movi r3, 3
  loop:
    movi r1, accum1
    callr r1
    movi r1, accum2
    callr r1
    subi r3, 1
    cmpi r3, 0
    jne loop
    movi r1, obuf
    store8 [r1], r2
    movi r0, 2
    mov r2, r1
    movi r3, 1
    syscall
    movi r0, 1
    movi r1, 0
    syscall
  accum1:
    addi r2, 1
    ret
  accum2:
    addi r2, 2
    ret
  .data
  obuf:
    .byte 0x00
)";

// ---- regression: elision fires and is observable in the stats ----

TEST(CoalesceRegression, ElidesJumpsOnPinnedFunctions) {
  zelf::Image original = must_assemble(kPinnedFuncsSrc);

  RewriteOptions on, off;
  on.coalesce = true;
  off.coalesce = false;
  RewriteResult a = must_rewrite(original, on);
  RewriteResult b = must_rewrite(original, off);

  // With coalescing the pinned functions are emitted at their pinned
  // addresses: reference jumps are elided and the stats say so.
  EXPECT_GT(a.reassembly.jumps_elided, 0u);
  EXPECT_GT(a.reassembly.pins_in_place, 0u);
  EXPECT_GT(a.reassembly.bytes_saved, 0u);
  EXPECT_EQ(b.reassembly.jumps_elided, 0u);
  EXPECT_GT(a.reassembly.elision_rate(), 0.0);

  // Elision pays for itself: the coalesced layout may differ by rel8/rel32
  // glue noise on a binary this small, but never by more than one long jump.
  EXPECT_LE(a.reassembly.overflow_bytes, b.reassembly.overflow_bytes + isa::kJmp32Len);
  EXPECT_LE(a.image.file_size(), b.image.file_size() + isa::kJmp32Len);

  // And it is invisible to execution.
  Behaviour orig = behaviour_of(original);
  EXPECT_EQ(orig, behaviour_of(a.image));
  EXPECT_EQ(orig, behaviour_of(b.image));
}

TEST(CoalesceRegression, RespectsNoCoalesceOption) {
  zelf::Image original = must_assemble(kPinnedFuncsSrc);
  RewriteOptions off;
  off.coalesce = false;
  RewriteResult r = must_rewrite(original, off);
  EXPECT_EQ(r.reassembly.jumps_elided, 0u);
  EXPECT_EQ(r.reassembly.dollops_coalesced, 0u);
  EXPECT_EQ(r.reassembly.elision_rate(), 0.0);
}

TEST(CoalesceRegression, DiversityDefaultsCoalesceOff) {
  zelf::Image original = must_assemble(kPinnedFuncsSrc);
  RewriteOptions opts;
  opts.placement = PlacementKind::kDiversity;
  RewriteResult r = must_rewrite(original, opts);
  // Diversity placement must not correlate successor layout with
  // predecessor layout unless explicitly asked to.
  EXPECT_EQ(r.reassembly.jumps_elided, 0u);
}

// ---- differential execution: trace identical modulo unconditional jumps ----

// Retired-op trace with unconditional jumps filtered out: elision and
// chaining only ever add or remove `jmp`, so everything else must match
// the original program exactly, in order.
std::vector<std::uint8_t> op_trace(const zelf::Image& img, std::uint64_t seed) {
  vm::Machine m(img);
  m.set_random_seed(seed);
  std::vector<std::uint8_t> ops;
  m.set_trace([&ops](std::uint64_t, const isa::Insn& in) {
    if (in.op != isa::Op::kJmp) ops.push_back(static_cast<std::uint8_t>(in.op));
  });
  vm::RunResult r = m.run();
  EXPECT_TRUE(r.exited) << "trace run faulted: " << vm::fault_name(r.fault);
  return ops;
}

struct DiffCase {
  const char* name;
  PlacementKind placement;
};

class CoalesceDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(CoalesceDifferentialTest, TraceAndBehaviourMatchAcrossSeeds) {
  zelf::Image original = must_assemble(kPinnedFuncsSrc);
  std::vector<std::uint8_t> orig_trace = op_trace(original, 0);

  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    RewriteOptions on, off;
    on.placement = off.placement = GetParam().placement;
    on.seed = off.seed = seed;
    on.coalesce = true;
    off.coalesce = false;
    RewriteResult a = must_rewrite(original, on);
    RewriteResult b = must_rewrite(original, off);

    EXPECT_EQ(behaviour_of(a.image), behaviour_of(b.image)) << "seed " << seed;
    EXPECT_EQ(op_trace(a.image, 0), orig_trace) << "coalesced, seed " << seed;
    EXPECT_EQ(op_trace(b.image, 0), orig_trace) << "non-coalesced, seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, CoalesceDifferentialTest,
                         ::testing::Values(DiffCase{"nearfit", PlacementKind::kNearfit},
                                           DiffCase{"diversity", PlacementKind::kDiversity},
                                           DiffCase{"pinpage", PlacementKind::kPinPage}),
                         [](const ::testing::TestParamInfo<DiffCase>& info) {
                           return info.param.name;
                         });

// ---- corpus differential: all 62 CBs, coalesce on vs off ----

// Sliced like CorpusFunctionalTest: slice k covers CBs k, k+8, k+16, ...
class CoalesceCorpusTest : public ::testing::TestWithParam<int> {};

TEST_P(CoalesceCorpusTest, Slice) {
  auto corpus = cfe_corpus();
  for (std::size_t i = static_cast<std::size_t>(GetParam()); i < corpus.size(); i += 8) {
    auto cb = generate_cb(corpus[i]);
    ASSERT_TRUE(cb.ok()) << cb.error().message;

    RewriteOptions on, off;
    on.coalesce = true;
    off.coalesce = false;
    RewriteResult a = must_rewrite(cb->image, on);
    RewriteResult b = must_rewrite(cb->image, off);

    EXPECT_LE(a.reassembly.overflow_bytes, b.reassembly.overflow_bytes) << corpus[i].name;

    for (const auto& poll : make_polls(*cb, 3, 0xC0A1)) {
      EXPECT_TRUE(run_poll(cb->image, a.image, poll).functional)
          << corpus[i].name << ": coalesced output diverges";
      EXPECT_TRUE(run_poll(cb->image, b.image, poll).functional)
          << corpus[i].name << ": non-coalesced output diverges";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Slices, CoalesceCorpusTest, ::testing::Range(0, 8));

// ---- shared reference-width policy (pins, continuations, emit paths) ----

TEST(RefWidth, GlueTakesRel8WheneverItReaches) {
  zelf::Image original = must_assemble(kPinnedFuncsSrc);
  auto prog = analysis::build_ir(original, {});
  ASSERT_TRUE(prog.ok()) << prog.error().message;

  rewriter::ReassemblyOptions opts;
  opts.prefer_short_refs = false;  // the diversity default
  rewriter::Reassembler r(*prog, opts);

  std::uint64_t site = prog->original.text().vaddr + 64;
  // Glue sites (squeezed pins, continuation jumps) take rel8 whenever it
  // reaches, regardless of prefer_short_refs...
  EXPECT_EQ(ReassemblerTestPeer::ref_width(r, site, site + 10, true, /*glue=*/true),
            isa::BranchWidth::kRel8);
  // ...true reference sites respect the option...
  EXPECT_EQ(ReassemblerTestPeer::ref_width(r, site, site + 10, true, /*glue=*/false),
            isa::BranchWidth::kRel32);
  // ...and out-of-reach targets are always rel32.
  EXPECT_EQ(ReassemblerTestPeer::ref_width(r, site, site + 4096, true, /*glue=*/true),
            isa::BranchWidth::kRel32);
  // A site that cannot take the short form never gets it.
  EXPECT_EQ(ReassemblerTestPeer::ref_width(r, site, site + 10, false, /*glue=*/true),
            isa::BranchWidth::kRel32);
}

TEST(RefWidth, PreferShortRefsEnablesRel8AtReferenceSites) {
  zelf::Image original = must_assemble(kPinnedFuncsSrc);
  auto prog = analysis::build_ir(original, {});
  ASSERT_TRUE(prog.ok()) << prog.error().message;

  rewriter::ReassemblyOptions opts;
  opts.prefer_short_refs = true;
  rewriter::Reassembler r(*prog, opts);

  std::uint64_t site = prog->original.text().vaddr + 64;
  EXPECT_EQ(ReassemblerTestPeer::ref_width(r, site, site + 10, true, /*glue=*/false),
            isa::BranchWidth::kRel8);
}

// ---- satellite: unused overflow trampolines are reclaimed ----

TEST(TrampolineReclaim, FrontierPadIsReturnedToTheAllocator) {
  zelf::Image original = must_assemble(kPinnedFuncsSrc);
  auto prog = analysis::build_ir(original, {});
  ASSERT_TRUE(prog.ok()) << prog.error().message;
  ASSERT_FALSE(prog->db.pins().empty());
  irdb::InsnId target = prog->db.pins().begin()->second;

  rewriter::ReassemblyOptions opts;
  rewriter::Reassembler r(*prog, opts);
  rewriter::MemorySpace& space = ReassemblerTestPeer::space(r);

  // A squeezed pin whose trampoline was parked at the overflow frontier.
  std::uint64_t pin_addr = prog->original.text().vaddr;
  ASSERT_TRUE(space.reserve(pin_addr, 2).ok());
  std::uint64_t tramp = space.allocate_overflow(5);
  ASSERT_EQ(space.overflow_used(), 5u);

  // The target places right next to the pin (nearfit anchors on it), the
  // reference takes the rel8 form, and the unused frontier trampoline is
  // handed back: the rewrite ends with an empty overflow area.
  ASSERT_TRUE(ReassemblerTestPeer::resolve_squeezed_pin(r, pin_addr, target, tramp, true).ok());
  EXPECT_EQ(space.overflow_used(), 0u);
}

TEST(TrampolineReclaim, BuriedPadStaysAsFiller) {
  zelf::Image original = must_assemble(kPinnedFuncsSrc);
  auto prog = analysis::build_ir(original, {});
  ASSERT_TRUE(prog.ok()) << prog.error().message;
  ASSERT_FALSE(prog->db.pins().empty());
  irdb::InsnId target = prog->db.pins().begin()->second;

  rewriter::ReassemblyOptions opts;
  rewriter::Reassembler r(*prog, opts);
  rewriter::MemorySpace& space = ReassemblerTestPeer::space(r);

  std::uint64_t pin_addr = prog->original.text().vaddr;
  ASSERT_TRUE(space.reserve(pin_addr, 2).ok());
  std::uint64_t tramp = space.allocate_overflow(5);
  space.allocate_overflow(5);  // a later allocation buries the trampoline
  ASSERT_EQ(space.overflow_used(), 10u);

  ASSERT_TRUE(ReassemblerTestPeer::resolve_squeezed_pin(r, pin_addr, target, tramp, true).ok());
  // Not at the frontier: the pad cannot be reclaimed and stays as filler.
  EXPECT_EQ(space.overflow_used(), 10u);
}

}  // namespace
}  // namespace zipr
