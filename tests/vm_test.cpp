// Tests for the VLX VM: instruction semantics, syscalls, faults, memory
// protection, and the statistics the evaluation relies on.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "vm/machine.h"

namespace zipr::vm {
namespace {

zelf::Image build(std::string_view src) {
  auto img = assembler::assemble(src);
  EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error().message);
  return std::move(img).value();
}

RunResult run_src(std::string_view src, ByteView input = {}, std::uint64_t seed = 0) {
  return run_program(build(src), input, seed);
}

std::string out_str(const RunResult& r) {
  return std::string(r.output.begin(), r.output.end());
}

TEST(Vm, TerminateWithStatus) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r0, 1
      movi r1, 42
      syscall
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_status, 42);
  EXPECT_EQ(r.fault, Fault::kNone);
}

TEST(Vm, TransmitWritesOutput) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r0, 2        ; transmit
      movi r1, 1        ; fd (ignored)
      movi r2, msg
      movi r3, 5
      syscall
      movi r0, 1
      movi r1, 0
      syscall
    .rodata
    msg: .ascii "hello"
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(out_str(r), "hello");
}

TEST(Vm, ReceiveReadsInputAndEof) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r0, 3        ; receive
      movi r1, 0
      movi r2, buf
      movi r3, 16
      syscall
      mov r3, r0        ; echo exactly what we read
      movi r0, 2
      movi r1, 1
      movi r2, buf
      syscall
      ; second receive at EOF must return 0
      movi r0, 3
      movi r1, 0
      movi r2, buf
      movi r3, 16
      syscall
      mov r1, r0        ; exit status = bytes read at EOF
      movi r0, 1
      syscall
    .bss
    buf: .space 16
  )",
                   Bytes{'a', 'b', 'c'});
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(out_str(r), "abc");
  EXPECT_EQ(r.exit_status, 0);
}

TEST(Vm, AllocateReturnsUsableMemory) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r0, 5        ; allocate
      movi r1, 100
      syscall
      mov r4, r0        ; base
      movi r5, 0x77
      store8 [r4+50], r5
      load8 r6, [r4+50]
      movi r0, 1
      mov r1, r6
      syscall
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_status, 0x77);
}

TEST(Vm, RandomIsDeterministicPerSeed) {
  const char* src = R"(
    .entry main
    .text
    main:
      movi r0, 7        ; random
      movi r1, buf
      movi r2, 8
      syscall
      movi r0, 2        ; transmit the 8 random bytes
      movi r1, 1
      movi r2, buf
      movi r3, 8
      syscall
      movi r0, 1
      movi r1, 0
      syscall
    .bss
    buf: .space 8
  )";
  auto a = run_src(src, {}, 99);
  auto b = run_src(src, {}, 99);
  auto c = run_src(src, {}, 100);
  EXPECT_EQ(a.output, b.output);
  EXPECT_NE(a.output, c.output);
}

TEST(Vm, FdwaitAndDeallocateSucceed) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r0, 4
      syscall
      mov r5, r0
      movi r0, 6
      movi r1, 0x10000000
      movi r2, 4096
      syscall
      add r5, r0
      movi r0, 1
      mov r1, r5
      syscall
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_status, 0);
}

TEST(Vm, BadSyscallFaults) {
  auto r = run_src(".entry m\n.text\nm: movi r0, 99\nsyscall\n");
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.fault, Fault::kBadSyscall);
}

TEST(Vm, CallAndRet) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r1, 5
      call double
      ; r1 = 10 now
      movi r0, 1
      syscall
    double:
      add r1, r1
      ret
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_status, 10);
}

TEST(Vm, IndirectCallThroughRegister) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r2, target
      callr r2
      movi r0, 1
      syscall
    target:
      movi r1, 77
      ret
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_status, 77);
}

TEST(Vm, JumpTableDispatch) {
  const char* src = R"(
    .entry main
    .text
    main:
      movi r0, 3        ; receive selector byte
      movi r1, 0
      movi r2, sel
      movi r3, 1
      syscall
      load8 r0, [r2]
      jmpt r0, table
    case0:
      movi r1, 100
      jmp done
    case1:
      movi r1, 200
      jmp done
    case2:
      movi r1, 300
    done:
      movi r0, 1
      syscall
    .rodata
    table:
      .quad case0, case1, case2
    .bss
    sel: .space 1
  )";
  EXPECT_EQ(run_src(src, Bytes{0}).exit_status, 100);
  EXPECT_EQ(run_src(src, Bytes{1}).exit_status, 200);
  EXPECT_EQ(run_src(src, Bytes{2}).exit_status, 300);
}

TEST(Vm, ConditionalSemantics) {
  // exit status = bitmask of taken conditions for the pair (3, 5).
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r1, 3
      movi r2, 5
      movi r3, 0
      cmp r1, r2
      jlt is_lt
      jmp after_lt
    is_lt:
      ori r3, 1
    after_lt:
      cmp r1, r2
      jne is_ne
      jmp after_ne
    is_ne:
      ori r3, 2
    after_ne:
      cmp r2, r1
      jgt is_gt
      jmp after_gt
    is_gt:
      ori r3, 4
    after_gt:
      movi r1, -1
      cmpi r1, 1
      jb is_b           ; unsigned: 0xfff... is not below 1
      ori r3, 8
    is_b:
      movi r0, 1
      mov r1, r3
      syscall
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_status, 1 | 2 | 4 | 8);
}

TEST(Vm, PcRelativeLoadpcAndLea) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      loadpc r1, value   ; r1 = 123
      lea r2, value
      load r3, [r2]      ; r3 = 123 via the lea'd address
      add r1, r3
      movi r0, 1
      syscall
    .rodata
    value: .quad 123
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_status, 246);
}

TEST(Vm, AluAndShifts) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r1, 7
      movi r2, 3
      mov r3, r1
      mul r3, r2        ; 21
      mov r4, r3
      div r4, r2        ; 7
      mov r5, r3
      mod r5, r2        ; 0
      movi r6, 1
      shli r6, 4        ; 16
      add r3, r4        ; 28
      add r3, r5        ; 28
      add r3, r6        ; 44
      movi r6, -8
      mov r2, r6
      movi r1, 3
      sar r2, r1        ; -1
      sub r3, r2        ; 45
      movi r0, 1
      mov r1, r3
      syscall
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_status, 45);
}

TEST(Vm, DivByZeroFaults) {
  auto r = run_src(".entry m\n.text\nm: movi r1, 1\nmovi r2, 0\ndiv r1, r2\nhlt\n");
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.fault, Fault::kDivByZero);
}

TEST(Vm, HltFaults) {
  auto r = run_src(".entry m\n.text\nm: hlt\n");
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.fault, Fault::kHalt);
  EXPECT_EQ(r.fault_pc, zelf::layout::kTextBase);
}

TEST(Vm, WriteToTextFaults) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r1, main
      movi r2, 0
      store [r1], r2
      hlt
  )");
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.fault, Fault::kBadAccess);
}

TEST(Vm, WriteToRodataFaults) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r1, konst
      movi r2, 9
      store [r1], r2
      hlt
    .rodata
    konst: .quad 5
  )");
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.fault, Fault::kBadAccess);
}

TEST(Vm, ExecuteDataFaults) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r1, blob
      jmpr r1
    .data
    blob: .byte 0x90, 0x90
  )");
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.fault, Fault::kBadAccess);
}

TEST(Vm, UnmappedAccessFaults) {
  auto r = run_src(".entry m\n.text\nm: movi r1, 0x1000\nload r2, [r1]\nhlt\n");
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.fault, Fault::kBadAccess);
}

TEST(Vm, UndecodableInstructionFaults) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      jmp data
    data:
      .byte 0x00, 0x00
  )");
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.fault, Fault::kBadInsn);
}

TEST(Vm, GasLimitStopsRunaway) {
  RunLimits lim;
  lim.max_insns = 1000;
  auto img = build(".entry m\n.text\nm: jmp m\n");
  auto r = run_program(img, {}, 0, lim);
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.fault, Fault::kGasExhausted);
  EXPECT_EQ(r.stats.insns, 1000u);
}

TEST(Vm, StackOverflowFaults) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      call main        ; infinite recursion
  )");
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.fault, Fault::kStackOverflow);
}

TEST(Vm, StatsCountInsnsAndPages) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      movi r0, 1
      movi r1, 0
      syscall
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.stats.insns, 3u);
  EXPECT_EQ(r.stats.syscalls, 1u);
  // One text page; terminate touches no memory; no stack use.
  EXPECT_GE(r.stats.max_rss_pages, 1u);
  EXPECT_LE(r.stats.max_rss_pages, 2u);
}

TEST(Vm, CyclesExceedInsns) {
  auto r = run_src(".entry m\n.text\nm: push r0\npop r1\nmovi r0, 1\nmovi r1, 0\nsyscall\n");
  EXPECT_TRUE(r.exited);
  EXPECT_GT(r.stats.cycles, r.stats.insns);
}

TEST(Vm, TouchingMorePagesIncreasesRss) {
  auto small = run_src(R"(
    .entry main
    .text
    main:
      movi r0, 1
      movi r1, 0
      syscall
  )");
  auto large = run_src(R"(
    .entry main
    .text
    main:
      movi r1, buf
      movi r2, 0
    loop:
      store8 [r1], r2
      addi r1, 4096
      addi r2, 1
      cmpi r2, 8
      jlt loop
      movi r0, 1
      movi r1, 0
      syscall
    .bss
    buf: .space 32768
  )");
  EXPECT_GT(large.stats.max_rss_pages, small.stats.max_rss_pages + 6);
}

TEST(Vm, SledSemantics) {
  // Jumping into the middle of a push-imm32's immediate executes nops:
  // the byte-level aliasing the paper's sleds exploit.
  auto r = run_src(R"(
    .entry main
    .text
    main:
      jmp sled_mid
    sled:
      .byte 0x68, 0x90, 0x90, 0x90, 0x90   ; push 0x90909090
    after:
      movi r0, 1
      movi r1, 7
      syscall
    sled_mid:
      jmp sled+1       ; lands on the first 0x90
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_status, 7);
}

TEST(Vm, SledPushPathLeavesValueOnStack) {
  auto r = run_src(R"(
    .entry main
    .text
    main:
      jmp sled         ; lands on 0x68: pushes 0x90909090
    sled:
      .byte 0x68, 0x90, 0x90, 0x90, 0x90
    after:
      pop r1           ; the sled's pushed word
      movi r0, 1
      syscall
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_status, 0x90909090);
}

TEST(Vm, InsnsByPcHookCountsRetiredInstructions) {
  auto img = build(R"(
    .entry m
    .text
    m:
      movi r1, 3
    loop:
      subi r1, 1
      jne loop
      movi r0, 1
      movi r1, 0
      syscall
  )");
  Machine off(img);
  EXPECT_TRUE(off.run().exited);
  EXPECT_TRUE(off.insns_by_pc().empty()) << "hook must be off by default";

  Machine m(img);
  m.set_count_pcs(true);
  auto r = m.run();
  EXPECT_TRUE(r.exited);
  const auto& hist = m.insns_by_pc();
  std::uint64_t total = 0;
  for (const auto& [pc, n] : hist) total += n;
  EXPECT_EQ(total, r.stats.insns);
  EXPECT_EQ(hist.at(zelf::layout::kTextBase), 1u);        // movi runs once
  auto loop_pc = zelf::layout::kTextBase + 6;             // subi: 3 iterations
  EXPECT_EQ(hist.at(loop_pc), 3u);
}

TEST(Vm, InputBytesConsumedTracksReceive) {
  const char* src = R"(
    .entry m
    .text
    m:
      movi r0, 3
      movi r1, 0
      movi r2, buf
      movi r3, 8
      syscall
      movi r0, 1
      movi r1, 0
      syscall
    .bss
    buf: .space 8
  )";
  Bytes fat(32, 5);
  auto r = run_src(src, fat);
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.input_bytes_consumed, 8u);  // 24 tail bytes never read
  Bytes thin(3, 5);
  auto r2 = run_src(src, thin);
  EXPECT_TRUE(r2.exited);
  EXPECT_EQ(r2.input_bytes_consumed, 3u);  // short read at EOF
}

TEST(Vm, SnapshotRestoreRewindsAllState) {
  const char* src = R"(
    .entry m
    .text
    m:
      movi r0, 3
      movi r1, 0
      movi r2, buf
      movi r3, 8
      syscall
      movi r6, buf
      load r1, [r6]
      movi r0, 1
      syscall
    .bss
    buf: .space 8
  )";
  auto img = build(src);
  Machine m(img);
  auto snap = m.snapshot();

  m.set_input(Bytes{1, 0, 0, 0, 0, 0, 0, 0});
  auto r1 = m.run();
  EXPECT_TRUE(r1.exited);
  EXPECT_EQ(r1.exit_status, 1);

  ASSERT_TRUE(m.restore(snap).ok());
  m.set_input(Bytes{9, 0, 0, 0, 0, 0, 0, 0});
  auto r2 = m.run();
  EXPECT_TRUE(r2.exited);
  EXPECT_EQ(r2.exit_status, 9) << "stale memory from the first run leaked through";
  EXPECT_EQ(r2.stats.insns, r1.stats.insns);

  // Restore also rewinds the touched-page accounting (MaxRSS metric).
  ASSERT_TRUE(m.restore(snap).ok());
  m.set_input(Bytes{2, 0, 0, 0, 0, 0, 0, 0});
  auto r3 = m.run();
  EXPECT_EQ(r3.stats.max_rss_pages, r2.stats.max_rss_pages);
}

TEST(Vm, RestoreWithoutSnapshotFails) {
  auto img = build(".entry m\n.text\nm: movi r0, 1\nmovi r1, 0\nsyscall\n");
  Machine a(img);
  Machine b(img);
  auto snap = a.snapshot();
  EXPECT_FALSE(b.restore(snap).ok()) << "no snapshot was ever taken on b";
}

TEST(Vm, TraceHookSeesEveryInstruction) {
  auto img = build(".entry m\n.text\nm: nop\nnop\nmovi r0, 1\nmovi r1, 0\nsyscall\n");
  Machine m(img);
  std::vector<std::uint64_t> pcs;
  m.set_trace([&](std::uint64_t pc, const isa::Insn&) { pcs.push_back(pc); });
  auto r = m.run();
  EXPECT_TRUE(r.exited);
  ASSERT_EQ(pcs.size(), 5u);
  EXPECT_EQ(pcs[0], zelf::layout::kTextBase);
  EXPECT_EQ(pcs[1], zelf::layout::kTextBase + 1);
}

// allocate() must refuse to grow the heap into the guard page below the
// stack mapping; a run of large allocations used to map pages straight
// through the stack region.
TEST(Vm, AllocateRefusesToGrowHeapIntoStackGuard) {
  constexpr std::uint64_t kCeiling =
      zelf::layout::kStackTop - zelf::layout::kStackSize - kPageSize;
  const char* src = R"(
    .entry main
    .text
    main:
      movi r0, 5          ; allocate
      movi r1, 1048576    ; 1 MiB
      syscall
      movi r0, 1
      movi r1, 0
      syscall
  )";

  {  // 1 MiB does not fit below the ceiling: must fault, not map.
    Machine m(build(src));
    m.set_heap_next(kCeiling - 0x1000);
    auto r = m.run();
    EXPECT_FALSE(r.exited);
    EXPECT_EQ(r.fault, Fault::kBadSyscall);
    // Nothing may have been mapped over the guard or the stack.
    EXPECT_FALSE(m.memory().is_mapped(kCeiling));
    EXPECT_EQ(m.heap_next(), kCeiling - 0x1000);
  }
  {  // An exact fit against the ceiling is still allowed.
    Machine m(build(src));
    m.set_heap_next(kCeiling - 0x100000);
    auto r = m.run();
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exit_status, 0);
    EXPECT_EQ(m.heap_next(), kCeiling);
  }
  {  // heap_next past the ceiling (overflow-adjacent) also faults.
    Machine m(build(src));
    m.set_heap_next(kCeiling + kPageSize);
    auto r = m.run();
    EXPECT_FALSE(r.exited);
    EXPECT_EQ(r.fault, Fault::kBadSyscall);
  }
}

// restore() erases pages mapped after the snapshot; the inline TLB must
// not serve stale translations for them afterwards.
TEST(VmMemory, RestoreDropsTlbEntriesForUnmappedPages) {
  Memory mem;
  mem.map_anon(0x1000, kPageSize, kPermRead | kPermWrite);
  auto snap = mem.snapshot();

  mem.map_anon(0x5000, kPageSize, kPermRead | kPermWrite);
  ASSERT_TRUE(mem.write_u8(0x5000, 0xAB).ok());  // warms the TLB
  ASSERT_TRUE(mem.read_u8(0x5000).ok());

  ASSERT_TRUE(mem.restore(snap).ok());
  EXPECT_FALSE(mem.read_u8(0x5000).ok());  // page is gone again
  EXPECT_TRUE(mem.read_u8(0x1000).ok());   // surviving page still works
}

}  // namespace
}  // namespace zipr::vm
