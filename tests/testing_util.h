// Shared helpers for tests: assemble sources, run images, rewrite them,
// and compare behaviour.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "asm/assembler.h"
#include "vm/machine.h"
#include "zipr/zipr.h"

namespace zipr::testing {

inline zelf::Image must_assemble(std::string_view src) {
  auto img = assembler::assemble(src);
  EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error().message);
  if (!img.ok()) std::abort();
  return std::move(img).value();
}

inline RewriteResult must_rewrite(const zelf::Image& input, RewriteOptions opts = {}) {
  auto r = rewrite(input, opts);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

/// Behaviour of one run, summarized for equality checks.
struct Behaviour {
  bool exited = false;
  std::int64_t exit_status = -1;
  vm::Fault fault = vm::Fault::kNone;
  Bytes output;

  friend bool operator==(const Behaviour&, const Behaviour&) = default;
};

inline Behaviour behaviour_of(const zelf::Image& img, ByteView input = {},
                              std::uint64_t seed = 0) {
  auto r = vm::run_program(img, input, seed);
  return {r.exited, r.exit_status, r.fault, r.output};
}

/// EXPECT that original and rewritten behave identically on `input`.
inline void expect_equivalent(const zelf::Image& original, const zelf::Image& rewritten,
                              ByteView input = {}, std::uint64_t seed = 0) {
  Behaviour a = behaviour_of(original, input, seed);
  Behaviour b = behaviour_of(rewritten, input, seed);
  EXPECT_EQ(a.exited, b.exited);
  EXPECT_EQ(a.exit_status, b.exit_status);
  EXPECT_EQ(a.fault, b.fault) << vm::fault_name(a.fault) << " vs " << vm::fault_name(b.fault);
  EXPECT_EQ(a.output, b.output)
      << "original: " << hex_dump(a.output) << "\nrewritten: " << hex_dump(b.output);
}

}  // namespace zipr::testing
