#!/usr/bin/env bash
# Run the microbenchmark suite and record BENCH_micro.json.
#
# Usage: tools/run_bench.sh [benchmark-filter-regex]
#
# Environment:
#   BUILD_DIR       build tree (default: <repo>/build)
#   BENCH_OUT       output JSON path (default: <repo>/BENCH_micro.json)
#   BENCH_MIN_TIME  per-benchmark min time (default: benchmark's own default)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="${BENCH_OUT:-$ROOT/BENCH_micro.json}"
FILTER="${1:-.}"

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" --target micro -j "$(nproc)" >/dev/null

args=(--benchmark_filter="$FILTER"
      --benchmark_out="$OUT"
      --benchmark_out_format=json)
if [[ -n "${BENCH_MIN_TIME:-}" ]]; then
  args+=(--benchmark_min_time="$BENCH_MIN_TIME")
fi
"$BUILD/bench/micro" "${args[@]}"
echo "wrote $OUT"
