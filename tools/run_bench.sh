#!/usr/bin/env bash
# Run the microbenchmark suite (BENCH_micro.json), the corpus-scale
# batch-engine benchmark (BENCH_corpus.json), the layout-quality bench
# (BENCH_layout.json: per-strategy coalescing elision rate, trailing-jump
# bytes, and output-size overhead), the fuzzing-subsystem bench
# (BENCH_fuzz.json: cov-instrumentation overhead, fuzzer throughput +
# planted-bug rediscovery, snapshot-restore vs full re-link), the
# serve-layer bench (BENCH_serve.json: content-addressed cache warm
# throughput + the delta-resubmission experiment), and the farm bench
# (BENCH_farm.json: sharded-campaign throughput at 1/2/4/8 shards, digest
# identity of merged results across shard counts, laf-gated rediscovery).
#
# Usage: tools/run_bench.sh [benchmark-filter-regex]
#
# Environment:
#   BUILD_DIR         build tree (default: <repo>/build)
#   BENCH_OUT         micro output JSON path (default: <repo>/BENCH_micro.json)
#   BENCH_CORPUS_OUT  corpus output JSON path (default: <repo>/BENCH_corpus.json)
#   BENCH_LAYOUT_OUT  layout output JSON path (default: <repo>/BENCH_layout.json)
#   BENCH_FUZZ_OUT    fuzz output JSON path (default: <repo>/BENCH_fuzz.json)
#   BENCH_SERVE_OUT   serve output JSON path (default: <repo>/BENCH_serve.json)
#   BENCH_FARM_OUT    farm output JSON path (default: <repo>/BENCH_farm.json)
#   BENCH_MIN_TIME    per-benchmark min time (default: benchmark's own default)
#   BENCH_REPEATS     batch_corpus repeats per pool size (default: 3, best-of)
#   PERF_THRESHOLD    perf_guard slowdown tolerance (default: 0.25)
#
# BENCH_corpus.json format (written by bench/batch_corpus.cpp):
#   {
#     "bench": "batch_corpus",
#     "corpus_size": <CB count>,
#     "repeats": <best-of repeat count>,
#     "hardware_concurrency": <cores visible to the run>,
#     "outputs_identical_across_pool_sizes": true|false,
#     "runs": [
#       {"jobs": <worker count>, "wall_ms": <best wall time>,
#        "succeeded": N, "failed": N,
#        "speedup_vs_serial": <serial wall / this wall>,
#        "stage_ms": {"ir"|"transform"|"reassembly"|"item_total":
#                     {"p50_ms","p90_ms","p99_ms","max_ms"}}},
#       ...one entry per pool size (1, 2, 4, 8)...
#     ]
#   }
# The binary exits non-zero if any pool size produced outputs differing from
# the serial pass or any corpus rewrite failed. speedup_vs_serial is recorded
# but NOT gated: it is hardware-dependent (on a 1-core machine every pool
# size necessarily runs ~1x; interpret it against hardware_concurrency).
#
# BENCH_serve.json format (written by bench/serve_throughput.cpp):
#   {
#     "bench": "serve_throughput",
#     "corpus_size": <CB count>, "repeats": <warm-pass best-of count>,
#     "cold_wall_ms": <62 cold rewrites>, "warm_wall_ms": <62 cache hits>,
#     "warm_speedup": <cold/warm>, "min_warm_speedup": <gated floor, 10x>,
#     "cache_hit_rate": <warm-pass hit fraction>, "min_cache_hit_rate": 1.0,
#     "outputs_identical": <warm bytes == cold bytes, per request>,
#     "cold_digest"/"warm_digest": <chained fnv1a over outputs; must match>,
#     "cold_start": {"scale": N, "text_bytes": N,
#               "first_request_wall_ms": <fresh engine, fresh heap>,
#               "steady_wall_ms": <best cold request on a warm engine,
#                                  cache cleared between requests>,
#               "steady_speedup": <first/steady -- the workspace-pool win>,
#               "min_steady_speedup": <gated floor, 1.5x>,
#               "outputs_identical": <fresh == recycled == no-workspace>},
#     "delta": {"attempted": N, "hits": N, "min_hits": <gated floor>,
#               "cold_fallbacks": N,
#               "wall_ms": <engine.handle() only: inputs perturbed before,
#                           verification after; gated < cold_wall_ms>,
#               "outputs_identical": <every delta response == direct rewrite>,
#               "text_never_delta": <text edits never served as delta>},
#     "persist": {"requests": N, "restart_hits": <must equal requests>,
#               "restart_identical": <restarted engine == cold bytes>,
#               "corrupt_cold_fallbacks": <must be > 0>,
#               "corrupt_fallback_identical": <corrupted file -> cold,
#                                              never wrong bytes>},
#     "peak_rss_kb": <process ru_maxrss>,
#     "max_peak_rss_kb": <gated ceiling -- workspace trim policy bound>,
#     "engine": {<ServeStats counters>}
#   }
# The binary exits non-zero when warm outputs diverge from cold, the hit
# rate is below 1.0, the warm speedup is under min_warm_speedup, any
# delta-path response differs from a direct cold rewrite, a text-byte
# perturbation was served from the delta path, the cold-start steady
# speedup is under min_steady_speedup (or its bytes diverge), a restarted
# engine misses a persisted request, or the corrupted-cache pass produces
# no cold fallbacks / wrong bytes. perf_guard --serve re-checks the
# identity bits plus the baseline's recorded floors and the RSS ceiling.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="${BENCH_OUT:-$ROOT/BENCH_micro.json}"
CORPUS_OUT="${BENCH_CORPUS_OUT:-$ROOT/BENCH_corpus.json}"
LAYOUT_OUT="${BENCH_LAYOUT_OUT:-$ROOT/BENCH_layout.json}"
FUZZ_OUT="${BENCH_FUZZ_OUT:-$ROOT/BENCH_fuzz.json}"
SERVE_OUT="${BENCH_SERVE_OUT:-$ROOT/BENCH_serve.json}"
FARM_OUT="${BENCH_FARM_OUT:-$ROOT/BENCH_farm.json}"
FILTER="${1:-.}"

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" --target micro batch_corpus layout_stats fuzz_overhead serve_throughput \
  farm_scaling -j "$(nproc)" >/dev/null

args=(--benchmark_filter="$FILTER"
      --benchmark_out="$OUT"
      --benchmark_out_format=json)
if [[ -n "${BENCH_MIN_TIME:-}" ]]; then
  args+=(--benchmark_min_time="$BENCH_MIN_TIME")
fi
"$BUILD/bench/micro" "${args[@]}"
echo "wrote $OUT"

# Absolute gates on the BM_RewriteLarge size sweep (allocs/op + peak-heap
# ceilings at x1, wall time and peak heap within 1.5x of linear at x50).
# Unconditional -- these are self-contained levels, not a baseline compare --
# but only meaningful when the sweep rows are present in the output.
if [[ "$FILTER" == "." ]]; then
  python3 "$ROOT/tools/perf_guard.py" --micro "$OUT"
fi

"$BUILD/bench/batch_corpus" --out="$CORPUS_OUT" --repeats="${BENCH_REPEATS:-3}"

"$BUILD/bench/layout_stats" --out="$LAYOUT_OUT"

"$BUILD/bench/fuzz_overhead" --out="$FUZZ_OUT"

"$BUILD/bench/serve_throughput" --out="$SERVE_OUT"

"$BUILD/bench/farm_scaling" --out="$FARM_OUT"

# Guard the throughput trajectory: a fresh run that regressed any shared
# benchmark beyond the threshold fails the script. Skipped when the fresh
# output IS the committed baseline path (first-time generation).
if [[ "$OUT" != "$ROOT/BENCH_micro.json" && -f "$ROOT/BENCH_micro.json" ]]; then
  python3 "$ROOT/tools/perf_guard.py" "$OUT" \
    --baseline "$ROOT/BENCH_micro.json" --threshold "${PERF_THRESHOLD:-0.25}"
fi
if [[ "$FUZZ_OUT" != "$ROOT/BENCH_fuzz.json" && -f "$ROOT/BENCH_fuzz.json" ]]; then
  python3 "$ROOT/tools/perf_guard.py" --fuzz "$FUZZ_OUT" \
    --baseline "$ROOT/BENCH_fuzz.json" --threshold "${PERF_THRESHOLD:-0.25}"
fi
if [[ "$SERVE_OUT" != "$ROOT/BENCH_serve.json" && -f "$ROOT/BENCH_serve.json" ]]; then
  python3 "$ROOT/tools/perf_guard.py" --serve "$SERVE_OUT" \
    --baseline "$ROOT/BENCH_serve.json" --threshold "${PERF_THRESHOLD:-0.25}"
fi
if [[ "$FARM_OUT" != "$ROOT/BENCH_farm.json" && -f "$ROOT/BENCH_farm.json" ]]; then
  python3 "$ROOT/tools/perf_guard.py" --farm "$FARM_OUT" \
    --baseline "$ROOT/BENCH_farm.json" --threshold "${PERF_THRESHOLD:-0.25}"
fi
