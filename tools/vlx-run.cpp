// vlx-run: execute a ZELF binary in the VLX VM (the DECREE-like
// environment) and report its behaviour.
//
//   vlx-run prog.zelf [--lib=<lib.zelf>]... [--input=<file>]
//           [--input-hex=<bytes>] [--seed=N] [--max-insns=N] [--stats]
//           [--trace] [--hex-output]
#include <cinttypes>

#include "cli_util.h"
#include "vm/link.h"
#include "vm/machine.h"
#include "zelf/io.h"

int main(int argc, char** argv) {
  using namespace zipr;
  cli::Args args(argc, argv);
  cli::reject_unknown(args, {"lib", "input", "input-hex", "seed", "max-insns", "stats",
                             "trace", "hex-output", "help"});
  if (args.has("help") || args.positional().size() != 1) {
    std::printf(
        "usage: vlx-run <prog.zelf> [--lib=<lib.zelf>]... [--input=<file>]\n"
        "               [--input-hex=<hex>] [--seed=N] [--max-insns=N] [--stats]\n"
        "               [--trace] [--hex-output]\n");
    return args.has("help") ? 0 : 2;
  }

  auto image = zelf::load_image(args.positional()[0]);
  if (!image.ok()) cli::die(image.error().message);

  // Load and bind shared libraries, if any.
  std::vector<zelf::Image> images{std::move(*image)};
  for (const auto& path : args.values("lib")) {
    auto lib = zelf::load_image(path);
    if (!lib.ok()) cli::die(path + ": " + lib.error().message);
    images.push_back(std::move(*lib));
  }
  auto linked = vm::link(std::move(images));
  if (!linked.ok()) cli::die(linked.error().message);

  Bytes input;
  if (auto path = args.value("input")) {
    auto data = cli::read_file(*path);
    if (!data) cli::die("cannot read " + *path);
    input.assign(data->begin(), data->end());
  } else if (auto hex = args.value("input-hex")) {
    std::string h = *hex;
    if (h.size() % 2) cli::die("--input-hex needs an even digit count");
    for (std::size_t i = 0; i < h.size(); i += 2)
      input.push_back(static_cast<Byte>(std::strtoul(h.substr(i, 2).c_str(), nullptr, 16)));
  }

  vm::RunLimits limits;
  limits.max_insns = cli::checked_u64(args, "max-insns", limits.max_insns);
  vm::Machine machine(*linked, limits);
  machine.set_input(std::move(input));
  machine.set_random_seed(cli::checked_u64(args, "seed", 0));
  if (args.has("trace"))
    machine.set_trace([](std::uint64_t pc, const isa::Insn& in) {
      std::fprintf(stderr, "%s: %s\n", hex_addr(pc).c_str(), isa::to_string_at(in, pc).c_str());
    });

  auto result = machine.run();

  if (args.has("hex-output")) {
    std::printf("%s\n", hex_dump(result.output).c_str());
  } else {
    std::fwrite(result.output.data(), 1, result.output.size(), stdout);
  }

  if (args.has("stats")) {
    std::fprintf(stderr, "insns=%" PRIu64 " cycles=%" PRIu64 " syscalls=%" PRIu64
                         " max-rss-pages=%zu\n",
                 result.stats.insns, result.stats.cycles, result.stats.syscalls,
                 result.stats.max_rss_pages);
  }
  if (result.exited) {
    std::fprintf(stderr, "exit status %lld\n", static_cast<long long>(result.exit_status));
    return static_cast<int>(result.exit_status & 0xff);
  }
  std::fprintf(stderr, "fault: %s at %s\n", vm::fault_name(result.fault),
               hex_addr(result.fault_pc).c_str());
  return 128;
}
