// vlx-as: assemble VLX assembly text into a ZELF binary.
//
//   vlx-as input.s --out=prog.zelf [--no-symbols]
#include "asm/assembler.h"
#include "cli_util.h"
#include "zelf/io.h"

int main(int argc, char** argv) {
  using namespace zipr;
  cli::Args args(argc, argv);
  cli::reject_unknown(args, {"out", "no-symbols", "help"});
  if (args.has("help") || args.positional().size() != 1) {
    std::printf("usage: vlx-as <input.s> --out=<prog.zelf> [--no-symbols]\n");
    return args.has("help") ? 0 : 2;
  }
  auto out_path = args.value("out");
  if (!out_path) cli::die("--out=<path> is required");

  auto source = cli::read_file(args.positional()[0]);
  if (!source) cli::die("cannot read " + args.positional()[0]);

  assembler::Options opts;
  opts.emit_symbols = !args.has("no-symbols");
  auto image = assembler::assemble(*source, opts);
  if (!image.ok()) cli::die(image.error().message);

  auto saved = zelf::save_image(*image, *out_path);
  if (!saved.ok()) cli::die(saved.error().message);

  std::printf("%s: %zu text bytes, %zu segments, %zu symbols -> %s (%zu bytes)\n",
              args.positional()[0].c_str(), image->text().bytes.size(),
              image->segments.size(), image->symbols.size(), out_path->c_str(),
              image->file_size());
  return 0;
}
