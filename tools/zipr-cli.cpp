// zipr-cli: the rewriter as a command-line tool.
//
// Single-binary mode:
//   zipr-cli input.zelf --out=output.zelf
//            [--transform=null|cfi|stackpad|canary|profile]...   (repeatable)
//            [--placement=nearfit|diversity|pinpage] [--seed=N]
//            [--coalesce|--no-coalesce] [--cov-prune|--no-cov-prune]
//            [--pin-call-returns] [--naive-pins]
//            [--stats] [--dump-ir=<file>] [--list-transforms]
//
// Batch mode (2+ inputs): rewrite a corpus on a worker pool; one failing
// binary is reported and exits nonzero at the end but never stops the rest.
//   zipr-cli a.zelf b.zelf ... --out-dir=DIR [--jobs=N] [batch-safe flags]
//
// Fuzz mode: instrument with coverage and run the coverage-guided fuzzer;
// --shards=N>1 runs the multi-shard farm orchestrator instead (same
// deterministic results at any shard/worker count, more lanes).
//   zipr-cli fuzz input.zelf [--transform=cov|laf]... [--runs=N] [--jobs=N]
//            [--shards=N] [--seed=N] [--input=<seed file>]... [--crash-dir=DIR]
//
// Serve mode: long-running rewrite service on a local Unix socket, with a
// content-addressed artifact cache and a page-delta fast path.
//   zipr-cli serve --socket=PATH [--jobs=N] [--cache-mb=N] [--no-delta]
//            [--max-delta-pages=N] [--max-requests=N] [--cache-file=PATH]
//   zipr-cli submit <input.zelf> --socket=PATH --out=<output.zelf>
//            [rewrite flags as in single-binary mode]
#include <cinttypes>
#include <climits>
#include <filesystem>

#include "batch/batch_rewriter.h"
#include "cli_util.h"
#include "farm/farm.h"
#include "fuzz/fuzzer.h"
#include "irdb/serialize.h"
#include "serve/engine.h"
#include "serve/socket.h"
#include "transform/api.h"
#include "zelf/io.h"
#include "zipr/zipr.h"

namespace {

// Rewrite-configuration flags shared by single-binary, batch, and submit
// modes; every numeric flag is strictly parsed (cli::checked_u64).
const std::vector<std::string> kRewriteFlags = {
    "transform", "placement", "seed",          "coalesce",  "no-coalesce",
    "cov-prune", "no-cov-prune", "pin-call-returns", "naive-pins"};

zipr::RewriteOptions parse_rewrite_options(const zipr::cli::Args& args) {
  using namespace zipr;
  RewriteOptions options;
  options.transforms = args.values("transform");
  options.seed = cli::checked_u64(args, "seed", 1);
  options.analysis.pinning.pin_call_returns = args.has("pin-call-returns");
  options.analysis.pinning.naive_pin_all = args.has("naive-pins");
  std::string placement = args.value("placement").value_or("nearfit");
  if (placement == "nearfit")
    options.placement = rewriter::PlacementKind::kNearfit;
  else if (placement == "diversity")
    options.placement = rewriter::PlacementKind::kDiversity;
  else if (placement == "pinpage")
    options.placement = rewriter::PlacementKind::kPinPage;
  else
    cli::die("unknown placement '" + placement + "'");
  if (args.has("coalesce") && args.has("no-coalesce"))
    cli::die("--coalesce and --no-coalesce are mutually exclusive");
  if (args.has("coalesce")) options.coalesce = true;
  if (args.has("no-coalesce")) options.coalesce = false;
  if (args.has("cov-prune") && args.has("no-cov-prune"))
    cli::die("--cov-prune and --no-cov-prune are mutually exclusive");
  options.cov_prune = !args.has("no-cov-prune");
  return options;
}

std::vector<std::string> with_flags(std::vector<std::string> base,
                                    std::initializer_list<const char*> extra) {
  for (const char* f : extra) base.emplace_back(f);
  return base;
}

int run_serve(const zipr::cli::Args& args) {
  using namespace zipr;
  cli::reject_unknown(args, {"socket", "jobs", "cache-mb", "no-delta", "max-delta-pages",
                             "max-requests", "cache-file"});
  auto socket_path = args.value("socket");
  if (!socket_path) cli::die("serve mode requires --socket=<path>");

  serve::ServeOptions sopts;
  sopts.jobs = static_cast<int>(cli::checked_u64(args, "jobs", 1, 4096));
  sopts.cache_bytes =
      static_cast<std::size_t>(cli::checked_u64(args, "cache-mb", 64, 1 << 20)) << 20;
  sopts.enable_delta = !args.has("no-delta");
  sopts.delta.max_changed_pages =
      static_cast<std::size_t>(cli::checked_u64(args, "max-delta-pages", 8, 1 << 20));
  // Persistent cache: a restarted daemon re-answers previously-seen
  // requests as byte-identical cache hits instead of re-rewriting.
  sopts.cache_file = args.value("cache-file").value_or("");
  serve::ServeEngine engine(sopts);

  serve::SocketServerOptions server;
  server.path = *socket_path;
  server.max_requests =
      static_cast<long>(cli::checked_u64(args, "max-requests", 0, LONG_MAX));
  if (server.max_requests == 0) server.max_requests = -1;  // 0/absent = unbounded

  std::printf("serve: listening on %s (jobs %d, cache %zu MiB, delta %s%s%s)\n",
              socket_path->c_str(), sopts.jobs, sopts.cache_bytes >> 20,
              sopts.enable_delta ? "on" : "off",
              sopts.cache_file.empty() ? "" : ", persist ",
              sopts.cache_file.c_str());
  std::fflush(stdout);

  Status st = serve::serve_on_socket(engine, server);
  if (!st.ok()) cli::die(st.error().message);

  serve::ServeStats s = engine.stats();
  std::printf(
      "serve: %" PRIu64 " request(s): %" PRIu64 " cold, %" PRIu64 " cache hit(s), %" PRIu64
      " delta hit(s), %" PRIu64 " delta fallback(s), %" PRIu64
      " failure(s); cache %zu bytes, %" PRIu64 " eviction(s)\n",
      s.requests, s.cold, s.cache_hits, s.delta_hits, s.delta_fallbacks, s.failures,
      s.cache.bytes, s.cache.evictions);
  return 0;
}

int run_submit(const zipr::cli::Args& args) {
  using namespace zipr;
  cli::reject_unknown(args, with_flags(kRewriteFlags, {"socket", "out"}));
  if (args.positional().size() != 2)
    cli::die("submit mode takes exactly one input image: zipr-cli submit <input.zelf>");
  auto socket_path = args.value("socket");
  if (!socket_path) cli::die("submit mode requires --socket=<path>");
  auto out_path = args.value("out");
  if (!out_path) cli::die("--out=<path> is required");

  auto data = cli::read_file(args.positional()[1]);
  if (!data) cli::die("cannot read " + args.positional()[1]);
  const auto* bytes = reinterpret_cast<const Byte*>(data->data());

  RewriteOptions options = parse_rewrite_options(args);
  auto reply = serve::submit_over_socket(*socket_path, ByteView(bytes, data->size()), options);
  if (!reply.ok()) cli::die(reply.error().message);

  if (!cli::write_file(*out_path,
                       std::string(reply->output.begin(), reply->output.end())))
    cli::die("cannot write " + *out_path);
  std::printf("%s -> %s: %zu -> %zu bytes (%s, %.2f ms)\n", args.positional()[1].c_str(),
              out_path->c_str(), data->size(), reply->output.size(),
              serve::source_name(reply->source), reply->wall_ms);
  return 0;
}

int run_batch(const zipr::cli::Args& args, const zipr::RewriteOptions& options) {
  using namespace zipr;
  auto out_dir = args.value("out-dir");
  if (!out_dir) cli::die("batch mode (2+ inputs) requires --out-dir=<dir>");
  std::error_code ec;
  std::filesystem::create_directories(*out_dir, ec);
  if (ec) cli::die("cannot create --out-dir " + *out_dir + ": " + ec.message());

  batch::BatchOptions bopts;
  bopts.jobs = static_cast<int>(cli::checked_u64(args, "jobs", 0, 4096));
  bopts.rewrite = options;

  // Loading is deferred into factories so file I/O parallelizes with
  // rewriting across the pool.
  std::vector<batch::BatchTask> tasks;
  for (const auto& path : args.positional())
    tasks.push_back({path, batch::ImageFactory([path] { return zelf::load_image(path); }),
                     std::nullopt});

  batch::BatchResult result = batch::BatchRewriter(bopts).run(std::move(tasks));

  int failed = 0;
  for (const auto& item : result.items) {
    if (!item.result.ok()) {
      std::fprintf(stderr, "FAIL %s: [%s] %s\n", item.name.c_str(),
                   item.result.error().kind_name(), item.result.error().message.c_str());
      ++failed;
      continue;
    }
    std::string out_path =
        (std::filesystem::path(*out_dir) / std::filesystem::path(item.name).filename()).string();
    auto saved = zelf::save_image(item.result->image, out_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "FAIL %s: cannot save: %s\n", item.name.c_str(),
                   saved.error().message.c_str());
      ++failed;
      continue;
    }
    const auto& in = item.result->instrumentation;
    if (in.candidate_sites > 0)
      std::printf("ok   %s -> %s (%.1f ms; %zu/%zu probes, %.0f%% pruned)\n", item.name.c_str(),
                  out_path.c_str(), item.total_ms, in.probes, in.candidate_sites,
                  in.prune_rate() * 100);
    else
      std::printf("ok   %s -> %s (%.1f ms)\n", item.name.c_str(), out_path.c_str(),
                  item.total_ms);
  }
  const auto& s = result.stats;
  std::printf(
      "batch: %zu ok, %zu failed of %zu on %zu worker(s) in %.1f ms "
      "(item p50 %.1f / p90 %.1f / p99 %.1f ms)\n",
      s.succeeded, s.failed, s.total, s.jobs, s.wall_ms, s.item_total.p50_ms,
      s.item_total.p90_ms, s.item_total.p99_ms);
  return failed == 0 ? 0 : 1;
}

// Per-stage novelty attribution: which mutation stages are actually
// earning corpus entries and crashes (a campaign admitting only havoc
// has exhausted its deterministic frontier; one admitting nothing is
// gated -- see --transform=laf).
void print_stage_counters(const zipr::fuzz::StageCounters& stages) {
  using namespace zipr;
  std::printf("stages:");
  for (std::size_t i = 0; i < fuzz::kStageCount; ++i)
    std::printf(" %s %" PRIu64 "+%" PRIu64 "c",
                fuzz::stage_name(static_cast<fuzz::MutationStage>(i)), stages.admitted[i],
                stages.crashes[i]);
  std::printf(" (admissions+crashes by producing stage)\n");
}

void save_crash_input(const zipr::cli::Args& args, std::size_t i, const zipr::Bytes& input) {
  using namespace zipr;
  auto dir = args.value("crash-dir");
  if (!dir) return;
  std::error_code ec;
  std::filesystem::create_directories(*dir, ec);
  if (ec) cli::die("cannot create --crash-dir " + *dir + ": " + ec.message());
  std::string path = (std::filesystem::path(*dir) / ("crash-" + std::to_string(i))).string();
  if (!cli::write_file(path, std::string(input.begin(), input.end())))
    cli::die("cannot write " + path);
}

// Sharded campaign (--shards=N>1): the farm orchestrator. Results are
// invariant to the shard/worker counts; only throughput changes.
int run_farm(const zipr::cli::Args& args, const zipr::zelf::Image& instrumented,
             const std::vector<zipr::Bytes>& seeds, std::uint64_t seed,
             std::uint64_t shards) {
  using namespace zipr;
  farm::FarmOptions fopts;
  fopts.seed = seed;
  fopts.shards = static_cast<std::size_t>(shards);
  fopts.jobs = static_cast<int>(cli::checked_u64(args, "jobs", 0, 4096));
  fopts.max_execs = cli::checked_u64(args, "runs", 20000);
  auto result = farm::run_campaign(instrumented, seeds, fopts);
  if (!result.ok()) cli::die(result.error().message);

  const auto& s = result->stats;
  std::printf(
      "farm: %" PRIu64 " execs over %" PRIu64 " epochs x %zu shard(s) (%.0f/sec), corpus %zu "
      "(%" PRIu64 " synced, %" PRIu64 " sync rejects), map %zu/%zu indices, %zu unique "
      "crash(es), %" PRIu64 " cross-shard duplicate(s)\n",
      s.execs, s.epochs, fopts.shards, s.execs_per_sec, result->corpus.size(),
      s.imported_entries, s.rejected_duplicates, s.map_indices_hit, fuzz::kMapSize,
      result->crashes.size(), s.duplicate_crashes);
  print_stage_counters(s.stages);
  for (std::size_t i = 0; i < result->crashes.size(); ++i) {
    const auto& c = result->crashes[i];
    std::printf("crash %zu: %s at %s (path %016" PRIx64 ", input %zu bytes; first seen epoch "
                "%" PRIu64 " stream %zu shard %zu, %zu duplicate sighting(s))\n",
                i, vm::fault_name(c.crash.fault), hex_addr(c.crash.fault_pc).c_str(),
                c.crash.path, c.crash.input.size(), c.origin.epoch, c.origin.stream,
                c.origin.shard, c.duplicates.size());
    save_crash_input(args, i, c.crash.input);
  }
  return result->crashes.empty() ? 0 : 1;
}

int run_fuzz(const zipr::cli::Args& args) {
  using namespace zipr;
  cli::reject_unknown(args, {"transform", "runs", "jobs", "seed", "input", "crash-dir",
                             "shards", "cov-prune", "no-cov-prune"});
  if (args.positional().size() != 2)
    cli::die("fuzz mode takes exactly one input image: zipr-cli fuzz <input.zelf>");

  auto input = zelf::load_image(args.positional()[1]);
  if (!input.ok()) cli::die(input.error().message);

  RewriteOptions options;
  options.transforms = args.values("transform");
  if (options.transforms.empty()) options.transforms = {"cov"};
  options.seed = cli::checked_u64(args, "seed", 1);
  if (args.has("cov-prune") && args.has("no-cov-prune"))
    cli::die("--cov-prune and --no-cov-prune are mutually exclusive");
  options.cov_prune = !args.has("no-cov-prune");
  auto rewritten = rewrite(*input, options);
  if (!rewritten.ok()) cli::die("instrumentation failed: " + rewritten.error().message);

  const auto& in = rewritten->instrumentation;
  if (in.candidate_sites > 0)
    std::printf(
        "instrument: %zu probes for %zu sites (%.0f%% pruned: %zu dominated, %zu collapsed; "
        "%zu edges split, %zu flag saves + %zu reg saves elided, %zu sites flag-live)\n",
        in.probes, in.candidate_sites, in.prune_rate() * 100, in.pruned_dominated,
        in.collapsed_single_pred, in.split_critical_edges, in.elided_flag_saves,
        in.elided_reg_saves, in.skipped_flags);
  if (in.compares_split > 0 || in.compares_skipped > 0)
    std::printf("laf: %zu compare(s) split byte-wise, %zu refused, %zu scratch save fallback(s)\n",
                in.compares_split, in.compares_skipped, in.compare_save_fallbacks);

  std::vector<Bytes> seeds;
  for (const auto& path : args.values("input")) {
    auto data = cli::read_file(path);
    if (!data) cli::die("cannot read seed input " + path);
    seeds.emplace_back(data->begin(), data->end());
  }
  if (seeds.empty()) seeds.push_back(Bytes(4, 0));  // minimal default seed

  // --shards=0 is rejected by name (min 1); 1 = plain single-stream fuzz.
  const std::uint64_t shards = cli::checked_u64(args, "shards", 1, 4096, 1);
  if (shards > 1) return run_farm(args, rewritten->image, seeds, options.seed, shards);

  fuzz::FuzzOptions fopts;
  fopts.seed = options.seed;
  fopts.jobs = static_cast<int>(cli::checked_u64(args, "jobs", 1, 4096));
  fopts.max_execs = cli::checked_u64(args, "runs", 20000);
  auto result = fuzz::fuzz(rewritten->image, seeds, fopts);
  if (!result.ok()) cli::die(result.error().message);

  const auto& s = result->stats;
  std::printf(
      "fuzz: %" PRIu64 " execs in %" PRIu64 " rounds (%.0f/sec, %" PRIu64
      " snapshot resets), corpus %zu, map %zu/%zu indices, %zu unique crash(es)\n",
      s.execs, s.rounds, s.execs_per_sec, s.resets, result->corpus.size(), s.map_indices_hit,
      fuzz::kMapSize, result->crashes.size());
  print_stage_counters(s.stages);
  for (std::size_t i = 0; i < result->crashes.size(); ++i) {
    const auto& c = result->crashes[i];
    std::printf("crash %zu: %s at %s (path %016" PRIx64 ", input %zu bytes)\n", i,
                vm::fault_name(c.fault), hex_addr(c.fault_pc).c_str(), c.path, c.input.size());
    save_crash_input(args, i, c.input);
  }
  return result->crashes.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zipr;
  cli::Args args(argc, argv);
  if (!args.positional().empty() && args.positional()[0] == "fuzz") return run_fuzz(args);
  if (!args.positional().empty() && args.positional()[0] == "serve") return run_serve(args);
  if (!args.positional().empty() && args.positional()[0] == "submit") return run_submit(args);
  cli::reject_unknown(args, with_flags(kRewriteFlags, {"out", "out-dir", "jobs", "stats",
                                                       "dump-ir", "list-transforms",
                                                       "help"}));

  if (args.has("list-transforms")) {
    for (const auto& name : transform::registered_transforms()) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (args.has("help") || args.positional().empty()) {
    std::printf(
        "usage: zipr-cli <input.zelf> --out=<output.zelf>\n"
        "                [--transform=<name>]... [--placement=nearfit|diversity|pinpage]\n"
        "                [--seed=N] [--coalesce|--no-coalesce] [--cov-prune|--no-cov-prune]\n"
        "                [--pin-call-returns] [--naive-pins] [--stats] [--dump-ir=<file>]\n"
        "                [--list-transforms]\n"
        "       zipr-cli <input.zelf>... --out-dir=<dir> [--jobs=N] [shared flags]\n"
        "                (batch mode: rewrites all inputs on a worker pool)\n"
        "       zipr-cli fuzz <input.zelf> [--transform=cov|laf]... [--runs=N] [--jobs=N]\n"
        "                [--shards=N] [--seed=N] [--input=<seed file>]... [--crash-dir=<dir>]\n"
        "                [--cov-prune|--no-cov-prune]\n"
        "                (coverage-guided fuzzing; --shards>1 = multi-shard farm)\n"
        "       zipr-cli serve --socket=<path> [--jobs=N] [--cache-mb=N] [--no-delta]\n"
        "                [--max-delta-pages=N] [--max-requests=N]\n"
        "                (rewrite service: content-addressed cache + delta path)\n"
        "       zipr-cli submit <input.zelf> --socket=<path> --out=<output.zelf>\n"
        "                [shared rewrite flags]\n"
        "                (send one job to a running serve instance)\n");
    return args.has("help") ? 0 : 2;
  }

  RewriteOptions options = parse_rewrite_options(args);

  // 2+ inputs (or an explicit --out-dir / --jobs): corpus batch mode.
  if (args.positional().size() > 1 || args.has("out-dir") || args.has("jobs"))
    return run_batch(args, options);

  auto out_path = args.value("out");
  if (!out_path) cli::die("--out=<path> is required");

  auto input = zelf::load_image(args.positional()[0]);
  if (!input.ok()) cli::die(input.error().message);

  // --dump-ir stops after IR construction + transforms: the tool-to-tool
  // exchange format the IRDB exists for.
  if (auto dump_path = args.value("dump-ir")) {
    auto prog = analysis::build_ir(*input, options.analysis);
    if (!prog.ok()) cli::die(prog.error().message);
    std::uint64_t stream = 1;  // matches zipr::rewrite's per-transform seeds
    for (const auto& name : options.transforms) {
      auto t = transform::make_transform(name);
      if (!t.ok()) cli::die(t.error().message);
      transform::TransformContext ctx(*prog, derive_seed(options.seed, stream++),
                                      transform::TransformConfig{options.cov_prune});
      auto applied = (*t)->apply(ctx);
      if (!applied.ok()) cli::die(applied.error().message);
    }
    if (!cli::write_file(*dump_path, irdb::serialize(prog->db)))
      cli::die("cannot write " + *dump_path);
    std::printf("IR dumped to %s (%zu instructions, %zu pins, %zu functions)\n",
                dump_path->c_str(), prog->db.insn_count(), prog->db.pins().size(),
                prog->db.function_count());
    return 0;
  }

  auto result = rewrite(*input, options);
  if (!result.ok()) cli::die(result.error().message);

  auto saved = zelf::save_image(result->image, *out_path);
  if (!saved.ok()) cli::die(saved.error().message);

  std::size_t in_size = input->file_size();
  std::size_t out_size = result->image.file_size();
  std::printf("%s -> %s: %zu -> %zu bytes (%+.2f%%)\n", args.positional()[0].c_str(),
              out_path->c_str(), in_size, out_size,
              (static_cast<double>(out_size) / static_cast<double>(in_size) - 1.0) * 100);

  if (args.has("stats")) {
    const auto& a = result->analysis;
    const auto& r = result->reassembly;
    std::printf(
        "analysis:   %zu insns lifted, %zu verbatim ranges (%zu bytes), %zu pins "
        "(%zu covered, %zu dropped), %zu functions, %zu jump tables\n",
        a.code_insns, a.verbatim_ranges, a.verbatim_bytes, a.pins, a.pins_covered,
        a.pins_dropped, a.functions, a.jump_tables);
    std::printf(
        "reassembly: %zu pins (%zu short, %zu long, %zu in-place), %zu sleds, %zu chains, "
        "%zu dollops (%zu splits), %zu insns placed, %" PRIu64 " overflow bytes\n",
        r.pins, r.pin_refs_short, r.pin_refs_long, r.pins_in_place, r.sleds, r.chains,
        r.dollops_placed, r.dollop_splits, r.insns_placed, r.overflow_bytes);
    std::printf(
        "coalescing: %zu dollops coalesced, %zu jumps elided (%.1f%% of continuations), "
        "%" PRIu64 " bytes saved, %" PRIu64 " trailing-jump bytes remain\n",
        r.dollops_coalesced, r.jumps_elided, r.elision_rate() * 100, r.bytes_saved,
        r.trailing_jump_bytes);
    const auto& in = result->instrumentation;
    if (in.candidate_sites > 0)
      std::printf(
          "instrument: %zu probes for %zu sites (%.0f%% pruned: %zu dominated, %zu collapsed; "
          "%zu edges split, %zu flag saves + %zu reg saves elided, %zu sites flag-live)\n",
          in.probes, in.candidate_sites, in.prune_rate() * 100, in.pruned_dominated,
          in.collapsed_single_pred, in.split_critical_edges, in.elided_flag_saves,
          in.elided_reg_saves, in.skipped_flags);
  }
  return 0;
}
