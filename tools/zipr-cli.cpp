// zipr-cli: the rewriter as a command-line tool.
//
//   zipr-cli input.zelf --out=output.zelf
//            [--transform=null|cfi|stackpad|canary|profile]...   (repeatable)
//            [--placement=nearfit|diversity|pinpage] [--seed=N]
//            [--pin-call-returns] [--naive-pins] [--stats]
//            [--dump-ir=<file>] [--list-transforms]
#include <cinttypes>

#include "cli_util.h"
#include "irdb/serialize.h"
#include "transform/api.h"
#include "zelf/io.h"
#include "zipr/zipr.h"

int main(int argc, char** argv) {
  using namespace zipr;
  cli::Args args(argc, argv);
  cli::reject_unknown(args, {"out", "transform", "placement", "seed", "pin-call-returns",
                             "naive-pins", "stats", "dump-ir", "list-transforms", "help"});

  if (args.has("list-transforms")) {
    for (const auto& name : transform::registered_transforms()) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (args.has("help") || args.positional().size() != 1) {
    std::printf(
        "usage: zipr-cli <input.zelf> --out=<output.zelf>\n"
        "                [--transform=<name>]... [--placement=nearfit|diversity|pinpage]\n"
        "                [--seed=N] [--pin-call-returns] [--naive-pins] [--stats]\n"
        "                [--dump-ir=<file>] [--list-transforms]\n");
    return args.has("help") ? 0 : 2;
  }
  auto out_path = args.value("out");
  if (!out_path) cli::die("--out=<path> is required");

  auto input = zelf::load_image(args.positional()[0]);
  if (!input.ok()) cli::die(input.error().message);

  RewriteOptions options;
  options.transforms = args.values("transform");
  options.seed = args.value_u64("seed", 1);
  options.analysis.pinning.pin_call_returns = args.has("pin-call-returns");
  options.analysis.pinning.naive_pin_all = args.has("naive-pins");
  std::string placement = args.value("placement").value_or("nearfit");
  if (placement == "nearfit")
    options.placement = rewriter::PlacementKind::kNearfit;
  else if (placement == "diversity")
    options.placement = rewriter::PlacementKind::kDiversity;
  else if (placement == "pinpage")
    options.placement = rewriter::PlacementKind::kPinPage;
  else
    cli::die("unknown placement '" + placement + "'");

  // --dump-ir stops after IR construction + transforms: the tool-to-tool
  // exchange format the IRDB exists for.
  if (auto dump_path = args.value("dump-ir")) {
    auto prog = analysis::build_ir(*input, options.analysis);
    if (!prog.ok()) cli::die(prog.error().message);
    for (const auto& name : options.transforms) {
      auto t = transform::make_transform(name);
      if (!t.ok()) cli::die(t.error().message);
      transform::TransformContext ctx(*prog, options.seed);
      auto applied = (*t)->apply(ctx);
      if (!applied.ok()) cli::die(applied.error().message);
    }
    if (!cli::write_file(*dump_path, irdb::serialize(prog->db)))
      cli::die("cannot write " + *dump_path);
    std::printf("IR dumped to %s (%zu instructions, %zu pins, %zu functions)\n",
                dump_path->c_str(), prog->db.insn_count(), prog->db.pins().size(),
                prog->db.function_count());
    return 0;
  }

  auto result = rewrite(*input, options);
  if (!result.ok()) cli::die(result.error().message);

  auto saved = zelf::save_image(result->image, *out_path);
  if (!saved.ok()) cli::die(saved.error().message);

  std::size_t in_size = input->file_size();
  std::size_t out_size = result->image.file_size();
  std::printf("%s -> %s: %zu -> %zu bytes (%+.2f%%)\n", args.positional()[0].c_str(),
              out_path->c_str(), in_size, out_size,
              (static_cast<double>(out_size) / static_cast<double>(in_size) - 1.0) * 100);

  if (args.has("stats")) {
    const auto& a = result->analysis;
    const auto& r = result->reassembly;
    std::printf(
        "analysis:   %zu insns lifted, %zu verbatim ranges (%zu bytes), %zu pins "
        "(%zu covered, %zu dropped), %zu functions, %zu jump tables\n",
        a.code_insns, a.verbatim_ranges, a.verbatim_bytes, a.pins, a.pins_covered,
        a.pins_dropped, a.functions, a.jump_tables);
    std::printf(
        "reassembly: %zu pins (%zu short, %zu long, %zu in-place), %zu sleds, %zu chains, "
        "%zu dollops (%zu splits), %zu insns placed, %" PRIu64 " overflow bytes\n",
        r.pins, r.pin_refs_short, r.pin_refs_long, r.pins_in_place, r.sleds, r.chains,
        r.dollops_placed, r.dollop_splits, r.insns_placed, r.overflow_bytes);
  }
  return 0;
}
