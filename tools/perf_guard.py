#!/usr/bin/env python3
"""Guard against rewrite-throughput regressions.

Compares a freshly produced google-benchmark JSON (BENCH_micro.json from
`tools/run_bench.sh` or the `perf_smoke` CMake target) against the committed
baseline at the repo root and fails when any shared benchmark slowed down by
more than the threshold.

Usage:
  tools/perf_guard.py FRESH.json [--baseline BENCH_micro.json]
                      [--threshold 0.25] [--filter REGEX]
  tools/perf_guard.py --micro FRESH.json
  tools/perf_guard.py --fuzz FRESH_fuzz.json [--baseline BENCH_fuzz.json]
                      [--threshold 0.25]
  tools/perf_guard.py --serve FRESH_serve.json [--baseline BENCH_serve.json]
                      [--threshold 0.25]
  tools/perf_guard.py --farm FRESH_farm.json [--baseline BENCH_farm.json]
                      [--threshold 0.25]

Notes:
  - Only `iteration` entries present in BOTH files are compared (aggregate
    rows like _mean/_stddev are skipped); new or removed benchmarks are
    reported but never fail the guard.
  - The default threshold is deliberately loose (25%): wall-clock noise on
    shared machines is real. Tighten with --threshold for quiet hardware.
  - `--micro` gates the size-parameterized BM_RewriteLarge family with
    ABSOLUTE levels (no baseline needed, so the gates hold even when the
    committed baseline itself drifts): x1 allocs/op and peak-heap ceilings,
    and a linear-scaling check that the x50 synthetic text completes with
    wall time (and peak heap) within 1.5x of linear extrapolation from x1.
    Allocation counts are deterministic; the scaling check compares the run
    against itself, so both survive noisy shared machines.
  - `--fuzz` switches to the BENCH_fuzz.json schema (fuzz_overhead bench)
    and gates: fuzz.execs_per_sec may not drop by more than the threshold,
    the zipr+cov mean_exec_overhead may not grow (relative to baseline) by
    more than the threshold, and -- when the baseline records absolute
    levels -- the fresh run must clear them regardless of the relative
    threshold: fuzz.min_execs_per_sec (throughput floor), each
    instrumented config's max_exec_overhead (overhead ceiling) and
    min_prune_rate (the CFG analysis must keep pruning at least that
    fraction of candidate probe sites).
  - `--serve` switches to the BENCH_serve.json schema (serve_throughput
    bench) and gates correctness ABSOLUTELY (warm outputs byte-identical to
    cold -- outputs_identical true and warm_digest == cold_digest -- plus
    delta.outputs_identical, delta.text_never_delta, the cold-start
    fresh-vs-recycled-workspace identity, and the persistence experiment:
    a restarted engine answers every persisted request as a byte-identical
    cache hit, and a corrupted cache file degrades to cold fallbacks with
    identical bytes, never a wrong answer) and throughput against the
    baseline's recorded floors: warm_speedup >= min_warm_speedup,
    cache_hit_rate >= min_cache_hit_rate, cold_start.steady_speedup >=
    min_steady_speedup (the workspace pool's win on repeated cold misses),
    delta.wall_ms strictly below cold_wall_ms (a delta resubmission must
    cost less than the cold rewrite it replaces), and peak_rss_kb under the
    baseline's max_peak_rss_kb ceiling (the workspace trim policy's bound).
    The relative threshold additionally flags a warm_speedup drop vs the
    baseline run.
  - `--farm` switches to the BENCH_farm.json schema (farm_scaling bench)
    and gates correctness ABSOLUTELY (identical_results: the merged
    corpus/crash digest must agree across every shard count;
    laf.rediscovered: the magic-gated bug stays findable through the
    farm), plus the baseline's min_efficiency_8 floor on 8-shard parallel
    efficiency and a relative check on 8-shard aggregate throughput.
  - Exit status: 0 = no regression, 1 = at least one benchmark regressed,
    2 = bad input.
"""

import argparse
import json
import re
import sys


def load_times(path):
    """benchmark name -> real_time in ns (iteration rows only)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_guard: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    times = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue
        unit = row.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            continue
        times[row["name"]] = float(row["real_time"]) * scale
    return times


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_guard: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


# Absolute gates for the BM_RewriteLarge size sweep (see guard_micro).
# The bench now measures WARM iterations through a persistent
# RewriteWorkspace (one untimed fill before the AllocScope), the way a
# serve/batch worker runs: measured ~680 allocs/op at x1 after the
# workspace + recycled-scratch work (down from ~1.4k without, and ~226k
# before the flat-IR rework), so 2k leaves headroom without readmitting
# per-request table rebuilds. The peak-heap ceiling is ~2x the measured
# ~2.8 MB warm transient footprint of the x1 rewrite. The scaling slack is
# the issue's 1.5x-of-linear bound for the x50 sweep.
MICRO_SWEEP_BENCH = "BM_RewriteLarge"
MICRO_BASE_ARG = 1
MICRO_TOP_ARG = 50
MICRO_MAX_ALLOCS_PER_OP = 2_000
MICRO_MAX_PEAK_HEAP_B = 6 * 1024 * 1024
MICRO_SCALING_SLACK = 1.5


def micro_row(doc, name):
    """The iteration row (full dict, counters inline) for a benchmark name.

    Matched by prefix: per-benchmark MinTime/Repetitions append suffixes
    like `/min_time:3.000` to the registered name.
    """
    for row in doc.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue
        got = row.get("name", "")
        if got == name or got.startswith(name + "/"):
            return row
    print(f"perf_guard: benchmark {name} missing from micro JSON "
          f"(was the run filtered?)", file=sys.stderr)
    sys.exit(2)


def row_time_ns(row):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(
        row.get("time_unit", "ns"))
    if scale is None:
        print(f"perf_guard: unknown time_unit in row {row.get('name')}",
              file=sys.stderr)
        sys.exit(2)
    return float(row["real_time"]) * scale


def guard_micro(args):
    """Gate the rewrite size sweep with absolute ceilings (no baseline)."""
    doc = load_json(args.fresh)
    base = micro_row(doc, f"{MICRO_SWEEP_BENCH}/{MICRO_BASE_ARG}")
    top = micro_row(doc, f"{MICRO_SWEEP_BENCH}/{MICRO_TOP_ARG}")
    factor = MICRO_TOP_ARG / MICRO_BASE_ARG
    regressed = []

    def gate(label, got, ceiling, fmt=lambda v: f"{v:,.0f}"):
        status = "FAIL" if got > ceiling else "ok"
        if got > ceiling:
            regressed.append((label, got / ceiling - 1.0))
        print(f"  [{status:>4}]  {label}: {fmt(got)} (ceiling {fmt(ceiling)})")

    # A fresh run missing the allocator counters (bench built without the
    # AllocScope hooks) must fail loudly, not pass vacuously.
    allocs = float(base.get("allocs/op", float("inf")))
    peak = float(base.get("peak_heap_B", float("inf")))
    gate(f"{base['name']} allocs/op", allocs, MICRO_MAX_ALLOCS_PER_OP)
    gate(f"{base['name']} peak_heap_B", peak, MICRO_MAX_PEAK_HEAP_B)

    # Linear-scaling checks: the x50 run may cost at most 1.5x the linear
    # extrapolation of the x1 run, in wall time and in transient heap. This
    # is the run compared against itself, so background load that slows both
    # sizes equally cannot fail it; only a superlinear term in the pipeline
    # (or a footprint that outgrew the cache hierarchy) will.
    t1, t50 = row_time_ns(base), row_time_ns(top)
    gate(f"{top['name']} real_time vs linear", t50,
         MICRO_SCALING_SLACK * factor * t1,
         fmt=lambda v: f"{v / 1e6:,.1f} ms")
    peak50 = float(top.get("peak_heap_B", float("inf")))
    gate(f"{top['name']} peak_heap_B vs linear", peak50,
         MICRO_SCALING_SLACK * factor * peak,
         fmt=lambda v: f"{v / 1e6:,.1f} MB")

    if regressed:
        print(f"\nperf_guard: {len(regressed)} micro gate(s) exceeded:",
              file=sys.stderr)
        for name, delta in regressed:
            print(f"  {name}: {delta:+.1%} over ceiling", file=sys.stderr)
        return 1
    print(f"\nperf_guard: rewrite sweep within absolute ceilings "
          f"(x{MICRO_TOP_ARG} scaling {t50 / (factor * t1):.2f}x of linear)")
    return 0


def cov_exec_overhead(doc):
    for row in doc.get("configs", []):
        if row.get("label") == "zipr+cov":
            return float(row["mean_exec_overhead"])
    print("perf_guard: no zipr+cov config row in fuzz JSON", file=sys.stderr)
    sys.exit(2)


def guard_fuzz(args):
    """Gate the fuzz_overhead bench: throughput and instrumentation cost."""
    fresh = load_json(args.fresh)
    base = load_json(args.baseline)
    regressed = []

    fresh_eps = float(fresh.get("fuzz", {}).get("execs_per_sec", 0))
    base_eps = float(base.get("fuzz", {}).get("execs_per_sec", 0))
    if base_eps <= 0:
        print("perf_guard: baseline execs_per_sec missing or zero", file=sys.stderr)
        sys.exit(2)
    drop = 1.0 - fresh_eps / base_eps
    status = "FAIL" if drop > args.threshold else "ok"
    if drop > args.threshold:
        regressed.append(("fuzz.execs_per_sec", drop))
    print(f"  [{status:>4}]  fuzz.execs_per_sec: {base_eps:10.1f} -> {fresh_eps:10.1f} "
          f"({-drop:+.1%})")

    floor = float(base.get("fuzz", {}).get("min_execs_per_sec", 0))
    if floor > 0:
        status = "FAIL" if fresh_eps < floor else "ok"
        if fresh_eps < floor:
            regressed.append(("fuzz.execs_per_sec below floor",
                              fresh_eps / floor - 1.0))
        print(f"  [{status:>4}]  fuzz.execs_per_sec floor: {floor:10.1f} "
              f"(fresh {fresh_eps:10.1f})")

    fresh_ovh = cov_exec_overhead(fresh)
    base_ovh = cov_exec_overhead(base)
    if base_ovh <= 0:
        print("perf_guard: baseline zipr+cov overhead missing or zero", file=sys.stderr)
        sys.exit(2)
    growth = fresh_ovh / base_ovh - 1.0
    status = "FAIL" if growth > args.threshold else "ok"
    if growth > args.threshold:
        regressed.append(("zipr+cov.mean_exec_overhead", growth))
    print(f"  [{status:>4}]  zipr+cov.mean_exec_overhead: {base_ovh:.4f} -> {fresh_ovh:.4f} "
          f"({growth:+.1%})")

    # Absolute levels recorded by the baseline: overhead ceilings and the
    # prune-rate floor per instrumented config. The fresh run is matched
    # to the baseline row by label; a fresh run missing the counters
    # (older bench binary) fails the gate rather than silently passing.
    fresh_rows = {r.get("label"): r for r in fresh.get("configs", [])}
    for row in base.get("configs", []):
        label = row.get("label")
        frow = fresh_rows.get(label, {})
        ceiling = float(row.get("max_exec_overhead", 0))
        if ceiling > 0:
            got = float(frow.get("mean_exec_overhead", float("inf")))
            status = "FAIL" if got >= ceiling else "ok"
            if got >= ceiling:
                regressed.append((f"{label}.mean_exec_overhead above ceiling",
                                  got / ceiling - 1.0))
            print(f"  [{status:>4}]  {label}.mean_exec_overhead ceiling: {ceiling:.2f} "
                  f"(fresh {got:.4f})")
        floor = float(row.get("min_prune_rate", 0))
        if floor > 0:
            got = float(frow.get("prune_rate", 0))
            status = "FAIL" if got < floor else "ok"
            if got < floor:
                regressed.append((f"{label}.prune_rate below floor", got - floor))
            print(f"  [{status:>4}]  {label}.prune_rate floor: {floor:.2f} "
                  f"(fresh {got:.4f})")

    if regressed:
        print(f"\nperf_guard: {len(regressed)} fuzz metric(s) regressed beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, delta in regressed:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nperf_guard: fuzz metrics within {args.threshold:.0%} of baseline")
    return 0


def guard_farm(args):
    """Gate the farm_scaling bench: reproducibility and parallel efficiency."""
    fresh = load_json(args.fresh)
    base = load_json(args.baseline)
    regressed = []

    # Correctness gates, absolute: a digest split between shard counts
    # means scheduling leaked into merged results; a missed laf
    # rediscovery means compare-splitting stopped carrying the gradient.
    for name, ok in [
        ("identical_results", bool(fresh.get("identical_results"))),
        ("laf.rediscovered", bool(fresh.get("laf", {}).get("rediscovered"))),
    ]:
        status = "ok" if ok else "FAIL"
        if not ok:
            regressed.append((f"farm.{name}", 0.0))
        print(f"  [{status:>4}]  farm.{name}")

    def row_for(doc, shards):
        for row in doc.get("rows", []):
            if int(row.get("shards", 0)) == shards:
                return row
        return {}

    # The efficiency floor from the BASELINE (so the committed gate holds
    # even if a fresh binary starts emitting a softer floor).
    floor = float(base.get("min_efficiency_8", 0))
    fresh8 = row_for(fresh, 8)
    if floor > 0:
        got = float(fresh8.get("efficiency", 0))
        status = "FAIL" if got < floor else "ok"
        if got < floor:
            regressed.append(("farm.efficiency@8shards below floor", got - floor))
        print(f"  [{status:>4}]  farm.efficiency@8shards floor: {floor:.2f} "
              f"(fresh {got:.4f})")

    base8 = row_for(base, 8)
    base_eps = float(base8.get("execs_per_sec", 0))
    fresh_eps = float(fresh8.get("execs_per_sec", 0))
    if base_eps > 0:
        drop = 1.0 - fresh_eps / base_eps
        status = "FAIL" if drop > args.threshold else "ok"
        if drop > args.threshold:
            regressed.append(("farm.execs_per_sec@8shards", drop))
        print(f"  [{status:>4}]  farm.execs_per_sec@8shards: {base_eps:10.1f} -> "
              f"{fresh_eps:10.1f} ({-drop:+.1%})")

    if regressed:
        print(f"\nperf_guard: {len(regressed)} farm metric(s) regressed:",
              file=sys.stderr)
        for name, delta in regressed:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nperf_guard: farm results reproducible and within {args.threshold:.0%} "
          f"of baseline")
    return 0


def guard_serve(args):
    """Gate the serve_throughput bench: byte-identity and warm throughput."""
    fresh = load_json(args.fresh)
    base = load_json(args.baseline)
    regressed = []

    # Correctness gates: these are bugs, not regressions, so they fail at
    # any threshold. A warm hit that is not byte-identical to the cold
    # rewrite means the cache served the wrong artifact; a restarted engine
    # that misses (or answers wrongly) means the persisted cache replayed a
    # record it should not have; a corrupted file must degrade to cold
    # fallbacks, never to different bytes.
    persist = fresh.get("persist", {})
    for name, ok in [
        ("outputs_identical", bool(fresh.get("outputs_identical"))),
        ("warm_digest == cold_digest",
         fresh.get("warm_digest") == fresh.get("cold_digest")
         and fresh.get("cold_digest") is not None),
        ("delta.outputs_identical", bool(fresh.get("delta", {}).get("outputs_identical"))),
        ("delta.text_never_delta", bool(fresh.get("delta", {}).get("text_never_delta"))),
        ("cold_start.outputs_identical",
         bool(fresh.get("cold_start", {}).get("outputs_identical"))),
        ("persist.restart_identical", bool(persist.get("restart_identical"))),
        ("persist.restart_hits == requests",
         persist.get("restart_hits") == persist.get("requests")
         and persist.get("requests") is not None),
        ("persist.corrupt_fallback_identical",
         bool(persist.get("corrupt_fallback_identical"))),
        ("persist.corrupt_cold_fallbacks > 0",
         int(persist.get("corrupt_cold_fallbacks", 0)) > 0),
    ]:
        status = "ok" if ok else "FAIL"
        if not ok:
            regressed.append((f"serve.{name}", 0.0))
        print(f"  [{status:>4}]  serve.{name}")

    fresh_speedup = float(fresh.get("warm_speedup", 0))
    base_speedup = float(base.get("warm_speedup", 0))
    floor = float(base.get("min_warm_speedup", 0))
    if floor > 0:
        status = "FAIL" if fresh_speedup < floor else "ok"
        if fresh_speedup < floor:
            regressed.append(("serve.warm_speedup below floor",
                              fresh_speedup / floor - 1.0))
        print(f"  [{status:>4}]  serve.warm_speedup floor: {floor:8.1f}x "
              f"(fresh {fresh_speedup:8.1f}x)")
    if base_speedup > 0:
        drop = 1.0 - fresh_speedup / base_speedup
        status = "FAIL" if drop > args.threshold else "ok"
        if drop > args.threshold:
            regressed.append(("serve.warm_speedup", drop))
        print(f"  [{status:>4}]  serve.warm_speedup: {base_speedup:8.1f}x -> "
              f"{fresh_speedup:8.1f}x ({-drop:+.1%})")

    fresh_hits = float(fresh.get("cache_hit_rate", 0))
    hit_floor = float(base.get("min_cache_hit_rate", 0))
    if hit_floor > 0:
        status = "FAIL" if fresh_hits < hit_floor else "ok"
        if fresh_hits < hit_floor:
            regressed.append(("serve.cache_hit_rate below floor",
                              fresh_hits - hit_floor))
        print(f"  [{status:>4}]  serve.cache_hit_rate floor: {hit_floor:.3f} "
              f"(fresh {fresh_hits:.4f})")

    # The delta validator is intentionally conservative, but it must not be
    # USELESS: the baseline records how many corpus resubmissions it proved
    # safe, and a fresh run may not fall below that floor (a validator that
    # started refusing everything would silently degrade to all-cold).
    delta_floor = int(base.get("delta", {}).get("min_hits", 0))
    if delta_floor > 0:
        got = int(fresh.get("delta", {}).get("hits", 0))
        status = "FAIL" if got < delta_floor else "ok"
        if got < delta_floor:
            regressed.append(("serve.delta.hits below floor",
                              (got - delta_floor) / float(delta_floor)))
        print(f"  [{status:>4}]  serve.delta.hits floor: {delta_floor} (fresh {got})")

    # And it must actually PAY: the delta pass resubmits (a perturbation of)
    # the same corpus the cold pass rewrote, so if its wall time is not
    # strictly below the cold pass the delta path costs more than the cold
    # rewrites it is supposed to avoid. Both numbers come from the same run,
    # so machine-wide noise largely cancels.
    delta_wall = float(fresh.get("delta", {}).get("wall_ms", 0))
    cold_wall = float(fresh.get("cold_wall_ms", 0))
    if cold_wall > 0:
        status = "FAIL" if delta_wall >= cold_wall else "ok"
        if delta_wall >= cold_wall:
            regressed.append(("serve.delta.wall_ms >= cold_wall_ms",
                              delta_wall / cold_wall - 1.0))
        print(f"  [{status:>4}]  serve.delta.wall_ms < cold_wall_ms: "
              f"{delta_wall:8.1f} ms vs {cold_wall:8.1f} ms")

    # Cold-start: the pooled workspaces must keep buying their floor (the
    # BASELINE's recorded floor, like the other absolute gates).
    cs_floor = float(base.get("cold_start", {}).get("min_steady_speedup", 0))
    if cs_floor > 0:
        got = float(fresh.get("cold_start", {}).get("steady_speedup", 0))
        status = "FAIL" if got < cs_floor else "ok"
        if got < cs_floor:
            regressed.append(("serve.cold_start.steady_speedup below floor",
                              got / cs_floor - 1.0))
        print(f"  [{status:>4}]  serve.cold_start.steady_speedup floor: {cs_floor:.2f}x "
              f"(fresh {got:.2f}x)")

    # Peak-RSS ceiling: the workspace trim policy bounds what the bench
    # process may pin. A leaky pool (one oversized request keeping its
    # tables forever, every worker hoarding a high-water copy) blows
    # through this even when wall times look fine.
    rss_ceiling = float(base.get("max_peak_rss_kb", 0))
    if rss_ceiling > 0:
        got = float(fresh.get("peak_rss_kb", float("inf")))
        status = "FAIL" if got > rss_ceiling else "ok"
        if got > rss_ceiling:
            regressed.append(("serve.peak_rss_kb above ceiling",
                              got / rss_ceiling - 1.0))
        print(f"  [{status:>4}]  serve.peak_rss_kb ceiling: {rss_ceiling:,.0f} "
              f"(fresh {got:,.0f})")

    if regressed:
        print(f"\nperf_guard: {len(regressed)} serve metric(s) regressed:",
              file=sys.stderr)
        for name, delta in regressed:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nperf_guard: serve metrics correct and within {args.threshold:.0%} "
          f"of baseline")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="freshly produced BENCH_micro.json")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline to compare against")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max tolerated slowdown fraction (default 0.25 = 25%%)")
    ap.add_argument("--filter", default=".",
                    help="only compare benchmarks matching this regex")
    ap.add_argument("--micro", action="store_true",
                    help="gate the BM_RewriteLarge size sweep with absolute "
                         "allocation/heap/scaling ceilings (no baseline)")
    ap.add_argument("--fuzz", action="store_true",
                    help="treat inputs as fuzz_overhead BENCH_fuzz.json files")
    ap.add_argument("--serve", action="store_true",
                    help="treat inputs as serve_throughput BENCH_serve.json files")
    ap.add_argument("--farm", action="store_true",
                    help="treat inputs as farm_scaling BENCH_farm.json files")
    args = ap.parse_args()

    if args.micro:
        return guard_micro(args)
    if args.fuzz:
        if args.baseline is None:
            args.baseline = "BENCH_fuzz.json"
        return guard_fuzz(args)
    if args.serve:
        if args.baseline is None:
            args.baseline = "BENCH_serve.json"
        return guard_serve(args)
    if args.farm:
        if args.baseline is None:
            args.baseline = "BENCH_farm.json"
        return guard_farm(args)
    if args.baseline is None:
        args.baseline = "BENCH_micro.json"

    fresh = load_times(args.fresh)
    base = load_times(args.baseline)
    pattern = re.compile(args.filter)

    shared = sorted(n for n in fresh if n in base and pattern.search(n))
    if not shared:
        print("perf_guard: no shared benchmarks to compare", file=sys.stderr)
        sys.exit(2)

    only_fresh = sorted(n for n in fresh if n not in base)
    only_base = sorted(n for n in base if n not in fresh)
    for n in only_fresh:
        print(f"  [new ]  {n}")
    for n in only_base:
        print(f"  [gone]  {n}")

    regressed = []
    for name in shared:
        ratio = fresh[name] / base[name] if base[name] > 0 else float("inf")
        delta = ratio - 1.0
        status = "FAIL" if delta > args.threshold else "ok"
        if delta > args.threshold:
            regressed.append((name, delta))
        print(f"  [{status:>4}]  {name}: {base[name]:12.0f} ns -> {fresh[name]:12.0f} ns "
              f"({delta:+.1%})")

    if regressed:
        print(f"\nperf_guard: {len(regressed)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, delta in regressed:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nperf_guard: {len(shared)} benchmarks within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
