// vlx-objdump: inspect a ZELF binary -- headers, segments, symbols, and a
// disassembly of the text segment from either engine's point of view.
//
//   vlx-objdump prog.zelf [--disasm=linear|traversal|none] [--no-symbols]
#include <cinttypes>

#include "analysis/disasm.h"
#include "cli_util.h"
#include "zelf/io.h"

int main(int argc, char** argv) {
  using namespace zipr;
  cli::Args args(argc, argv);
  cli::reject_unknown(args, {"disasm", "no-symbols", "help"});
  if (args.has("help") || args.positional().size() != 1) {
    std::printf("usage: vlx-objdump <prog.zelf> [--disasm=linear|traversal|none] [--no-symbols]\n");
    return args.has("help") ? 0 : 2;
  }

  auto image = zelf::load_image(args.positional()[0]);
  if (!image.ok()) cli::die(image.error().message);

  std::printf("%s: ZELF, entry %s, %zu file bytes\n\n", args.positional()[0].c_str(),
              hex_addr(image->entry).c_str(), image->file_size());

  std::printf("segments:\n");
  for (const auto& seg : image->segments)
    std::printf("  %-7s %s..%s  file=%zu mem=%" PRIu64 "\n", zelf::seg_kind_name(seg.kind),
                hex_addr(seg.vaddr).c_str(), hex_addr(seg.end()).c_str(), seg.bytes.size(),
                seg.memsize);

  if (!args.has("no-symbols") && !image->symbols.empty()) {
    std::printf("\nsymbols:\n");
    for (const auto& sym : image->symbols) {
      const char* kind = sym.kind == zelf::Symbol::Kind::kFunc     ? "func"
                         : sym.kind == zelf::Symbol::Kind::kObject ? "object"
                                                                   : "label";
      std::printf("  %s %-6s %s\n", hex_addr(sym.addr).c_str(), kind, sym.name.c_str());
    }
  }

  std::string mode = args.value("disasm").value_or("traversal");
  if (mode == "none") return 0;

  analysis::DisasmResult dis;
  if (mode == "linear") {
    dis = analysis::linear_sweep(image->text());
  } else if (mode == "traversal") {
    dis = analysis::recursive_traversal(*image).dis;
  } else {
    cli::die("--disasm must be linear, traversal, or none");
  }

  std::printf("\ndisassembly (%s):\n", mode.c_str());
  const zelf::Segment& text = image->text();
  std::uint64_t addr = text.vaddr;
  const std::uint64_t end = text.vaddr + text.bytes.size();
  while (addr < end) {
    const isa::Insn* found = dis.insns.find(addr);
    if (!found) {
      // Coalesce undecoded/unreached bytes into one line per gap.
      std::uint64_t gap_end = addr;
      while (gap_end < end && !dis.insns.count(gap_end)) ++gap_end;
      std::printf("  %s  <%" PRIu64 " data/unreached bytes>\n", hex_addr(addr).c_str(),
                  gap_end - addr);
      addr = gap_end;
      continue;
    }
    const isa::Insn& in = *found;
    Bytes raw(text.bytes.begin() + static_cast<std::ptrdiff_t>(addr - text.vaddr),
              text.bytes.begin() + static_cast<std::ptrdiff_t>(addr - text.vaddr + in.length));
    std::printf("  %s  %-30s %s\n", hex_addr(addr).c_str(), hex_dump(raw).c_str(),
                isa::to_string_at(in, addr).c_str());
    addr += in.length;
  }
  return 0;
}
