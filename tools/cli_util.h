// Minimal shared helpers for the command-line tools: flag parsing and
// file slurping. Deliberately dependency-free.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace zipr::cli {

/// Flag-style argument list: positionals plus --key[=value] options.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        auto eq = a.find('=');
        if (eq == std::string::npos) {
          // `--key value` when a value follows and is not itself a flag
          // AND the caller asks for it via value(); store as bare flag
          // with optional lookahead value.
          flags_.emplace_back(a.substr(2), std::nullopt);
        } else {
          flags_.emplace_back(a.substr(2, eq - 2), a.substr(eq + 1));
        }
      } else {
        positional_.push_back(std::move(a));
      }
    }
  }

  bool has(const std::string& key) const {
    for (const auto& [k, v] : flags_)
      if (k == key) return true;
    return false;
  }

  std::optional<std::string> value(const std::string& key) const {
    for (const auto& [k, v] : flags_)
      if (k == key && v) return v;
    return std::nullopt;
  }

  /// All values given for a repeatable option (--transform=a --transform=b).
  std::vector<std::string> values(const std::string& key) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : flags_)
      if (k == key && v) out.push_back(*v);
    return out;
  }

  // NOTE: there is deliberately no lax value_u64 here; numeric flags go
  // through cli::checked_u64 below so malformed values always die loudly.

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags the tool does not know about; callers reject them.
  std::vector<std::string> unknown(const std::vector<std::string>& known) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : flags_) {
      bool ok = false;
      for (const auto& good : known) ok |= k == good;
      if (!ok) out.push_back(k);
    }
    return out;
  }

 private:
  std::vector<std::string> positional_;
  std::vector<std::pair<std::string, std::optional<std::string>>> flags_;
};

inline std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

inline bool write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return out.good();
}

[[noreturn]] inline void die(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::exit(2);
}

inline void reject_unknown(const Args& args, const std::vector<std::string>& known) {
  auto bad = args.unknown(known);
  if (!bad.empty()) die("unknown option --" + bad.front());
}

/// Strictly-parsed unsigned integer flag. Unlike Args::value_u64 (which
/// strtoull's whatever it is given and silently yields 0 or a wrapped
/// value), malformed text, trailing garbage, signs, and out-of-range
/// values all die with the offending text, so `--jobs=banana` or
/// `--seed=-1` can never be mistaken for a configuration. `min` lets
/// flags where zero is meaningless (--shards=0) reject it by name
/// instead of tripping some distant divide or empty-pool hang.
inline std::uint64_t checked_u64(const Args& args, const std::string& key,
                                 std::uint64_t fallback,
                                 std::uint64_t max = UINT64_MAX,
                                 std::uint64_t min = 0) {
  if (!args.has(key)) return fallback;
  auto v = args.value(key);
  if (!v || v->empty()) die("--" + key + " requires a value (--" + key + "=N)");
  const char* s = v->c_str();
  if (!(s[0] >= '0' && s[0] <= '9'))
    die("invalid --" + key + " value '" + *v + "': expected an unsigned integer");
  errno = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(s, &end, 0);
  if (end == s || *end != '\0')
    die("invalid --" + key + " value '" + *v + "': expected an unsigned integer");
  if (errno == ERANGE || parsed > max)
    die("--" + key + " value '" + *v + "' is out of range (max " + std::to_string(max) +
        ")");
  if (parsed < min)
    die("--" + key + " value '" + *v + "' is out of range (min " + std::to_string(min) +
        ")");
  return parsed;
}

}  // namespace zipr::cli
