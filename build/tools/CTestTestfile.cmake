# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_smoke "bash" "-c" "set -e; cd /root/repo/build/tools; /root/repo/build/tools/vlx-as smoke.s --out=smoke.zelf >/dev/null; /root/repo/build/tools/vlx-objdump smoke.zelf --disasm=traversal >/dev/null; /root/repo/build/tools/vlx-objdump smoke.zelf --disasm=linear >/dev/null; /root/repo/build/tools/zipr-cli smoke.zelf --out=smoke-cfi.zelf --transform=cfi --stats >/dev/null; /root/repo/build/tools/zipr-cli smoke.zelf --out=/dev/null --dump-ir=smoke-ir.txt >/dev/null; grep -q 'zipr-irdb 1' smoke-ir.txt; a=\$(/root/repo/build/tools/vlx-run smoke.zelf 2>/dev/null); b=\$(/root/repo/build/tools/vlx-run smoke-cfi.zelf 2>/dev/null); test \"\$a\" = \"\$b\" && test \"\$a\" = 'ok.'")
set_tests_properties(tools_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;36;add_test;/root/repo/tools/CMakeLists.txt;0;")
