; tools smoke-test subject
.entry main
.text
main:
  movi r4, greet
  callr r4
  movi r0, 1
  movi r1, 0
  syscall
greet:
  movi r0, 2
  movi r1, 1
  movi r2, msg
  movi r3, 3
  syscall
  ret
.rodata
msg: .ascii "ok."
