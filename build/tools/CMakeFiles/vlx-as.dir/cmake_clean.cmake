file(REMOVE_RECURSE
  "CMakeFiles/vlx-as.dir/vlx-as.cpp.o"
  "CMakeFiles/vlx-as.dir/vlx-as.cpp.o.d"
  "vlx-as"
  "vlx-as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlx-as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
