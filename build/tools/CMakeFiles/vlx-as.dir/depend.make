# Empty dependencies file for vlx-as.
# This may be replaced when dependencies are built.
