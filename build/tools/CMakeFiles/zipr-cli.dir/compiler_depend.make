# Empty compiler generated dependencies file for zipr-cli.
# This may be replaced when dependencies are built.
