file(REMOVE_RECURSE
  "CMakeFiles/zipr-cli.dir/zipr-cli.cpp.o"
  "CMakeFiles/zipr-cli.dir/zipr-cli.cpp.o.d"
  "zipr-cli"
  "zipr-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipr-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
