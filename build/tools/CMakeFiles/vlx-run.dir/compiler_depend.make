# Empty compiler generated dependencies file for vlx-run.
# This may be replaced when dependencies are built.
