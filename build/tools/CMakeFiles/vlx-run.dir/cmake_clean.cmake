file(REMOVE_RECURSE
  "CMakeFiles/vlx-run.dir/vlx-run.cpp.o"
  "CMakeFiles/vlx-run.dir/vlx-run.cpp.o.d"
  "vlx-run"
  "vlx-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlx-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
