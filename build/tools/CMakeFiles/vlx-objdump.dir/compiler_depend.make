# Empty compiler generated dependencies file for vlx-objdump.
# This may be replaced when dependencies are built.
