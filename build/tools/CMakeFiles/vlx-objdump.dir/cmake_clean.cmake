file(REMOVE_RECURSE
  "CMakeFiles/vlx-objdump.dir/vlx-objdump.cpp.o"
  "CMakeFiles/vlx-objdump.dir/vlx-objdump.cpp.o.d"
  "vlx-objdump"
  "vlx-objdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlx-objdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
