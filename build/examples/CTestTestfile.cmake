# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cfi_protect "/root/repo/build/examples/cfi_protect")
set_tests_properties(example_cfi_protect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_diversify "/root/repo/build/examples/diversify")
set_tests_properties(example_diversify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cgc_pipeline "/root/repo/build/examples/cgc_pipeline")
set_tests_properties(example_cgc_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shared_library "/root/repo/build/examples/shared_library")
set_tests_properties(example_shared_library PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
