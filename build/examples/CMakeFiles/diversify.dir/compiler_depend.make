# Empty compiler generated dependencies file for diversify.
# This may be replaced when dependencies are built.
