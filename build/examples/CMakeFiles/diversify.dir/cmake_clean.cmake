file(REMOVE_RECURSE
  "CMakeFiles/diversify.dir/diversify.cpp.o"
  "CMakeFiles/diversify.dir/diversify.cpp.o.d"
  "diversify"
  "diversify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
