file(REMOVE_RECURSE
  "CMakeFiles/cgc_pipeline.dir/cgc_pipeline.cpp.o"
  "CMakeFiles/cgc_pipeline.dir/cgc_pipeline.cpp.o.d"
  "cgc_pipeline"
  "cgc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
