# Empty compiler generated dependencies file for cgc_pipeline.
# This may be replaced when dependencies are built.
