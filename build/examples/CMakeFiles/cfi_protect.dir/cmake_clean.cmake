file(REMOVE_RECURSE
  "CMakeFiles/cfi_protect.dir/cfi_protect.cpp.o"
  "CMakeFiles/cfi_protect.dir/cfi_protect.cpp.o.d"
  "cfi_protect"
  "cfi_protect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfi_protect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
