# Empty compiler generated dependencies file for cfi_protect.
# This may be replaced when dependencies are built.
