# Empty dependencies file for shared_library.
# This may be replaced when dependencies are built.
