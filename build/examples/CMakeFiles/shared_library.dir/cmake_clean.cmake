file(REMOVE_RECURSE
  "CMakeFiles/shared_library.dir/shared_library.cpp.o"
  "CMakeFiles/shared_library.dir/shared_library.cpp.o.d"
  "shared_library"
  "shared_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
