# Empty compiler generated dependencies file for zipr_cgc.
# This may be replaced when dependencies are built.
