file(REMOVE_RECURSE
  "libzipr_cgc.a"
)
