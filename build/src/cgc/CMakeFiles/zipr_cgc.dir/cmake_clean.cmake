file(REMOVE_RECURSE
  "CMakeFiles/zipr_cgc.dir/exploits.cpp.o"
  "CMakeFiles/zipr_cgc.dir/exploits.cpp.o.d"
  "CMakeFiles/zipr_cgc.dir/filter.cpp.o"
  "CMakeFiles/zipr_cgc.dir/filter.cpp.o.d"
  "CMakeFiles/zipr_cgc.dir/generator.cpp.o"
  "CMakeFiles/zipr_cgc.dir/generator.cpp.o.d"
  "CMakeFiles/zipr_cgc.dir/metrics.cpp.o"
  "CMakeFiles/zipr_cgc.dir/metrics.cpp.o.d"
  "CMakeFiles/zipr_cgc.dir/poller.cpp.o"
  "CMakeFiles/zipr_cgc.dir/poller.cpp.o.d"
  "CMakeFiles/zipr_cgc.dir/workload.cpp.o"
  "CMakeFiles/zipr_cgc.dir/workload.cpp.o.d"
  "libzipr_cgc.a"
  "libzipr_cgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipr_cgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
