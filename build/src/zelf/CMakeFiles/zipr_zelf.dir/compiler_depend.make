# Empty compiler generated dependencies file for zipr_zelf.
# This may be replaced when dependencies are built.
