file(REMOVE_RECURSE
  "CMakeFiles/zipr_zelf.dir/image.cpp.o"
  "CMakeFiles/zipr_zelf.dir/image.cpp.o.d"
  "CMakeFiles/zipr_zelf.dir/io.cpp.o"
  "CMakeFiles/zipr_zelf.dir/io.cpp.o.d"
  "libzipr_zelf.a"
  "libzipr_zelf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipr_zelf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
