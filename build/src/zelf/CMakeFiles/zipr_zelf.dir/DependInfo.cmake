
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zelf/image.cpp" "src/zelf/CMakeFiles/zipr_zelf.dir/image.cpp.o" "gcc" "src/zelf/CMakeFiles/zipr_zelf.dir/image.cpp.o.d"
  "/root/repo/src/zelf/io.cpp" "src/zelf/CMakeFiles/zipr_zelf.dir/io.cpp.o" "gcc" "src/zelf/CMakeFiles/zipr_zelf.dir/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/zipr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
