file(REMOVE_RECURSE
  "libzipr_zelf.a"
)
