file(REMOVE_RECURSE
  "CMakeFiles/zipr_isa.dir/decode.cpp.o"
  "CMakeFiles/zipr_isa.dir/decode.cpp.o.d"
  "CMakeFiles/zipr_isa.dir/encode.cpp.o"
  "CMakeFiles/zipr_isa.dir/encode.cpp.o.d"
  "CMakeFiles/zipr_isa.dir/format.cpp.o"
  "CMakeFiles/zipr_isa.dir/format.cpp.o.d"
  "libzipr_isa.a"
  "libzipr_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipr_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
