file(REMOVE_RECURSE
  "libzipr_isa.a"
)
