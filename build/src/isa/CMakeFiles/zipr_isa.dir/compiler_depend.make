# Empty compiler generated dependencies file for zipr_isa.
# This may be replaced when dependencies are built.
