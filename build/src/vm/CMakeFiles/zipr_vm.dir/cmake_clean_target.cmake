file(REMOVE_RECURSE
  "libzipr_vm.a"
)
