file(REMOVE_RECURSE
  "CMakeFiles/zipr_vm.dir/link.cpp.o"
  "CMakeFiles/zipr_vm.dir/link.cpp.o.d"
  "CMakeFiles/zipr_vm.dir/machine.cpp.o"
  "CMakeFiles/zipr_vm.dir/machine.cpp.o.d"
  "CMakeFiles/zipr_vm.dir/memory.cpp.o"
  "CMakeFiles/zipr_vm.dir/memory.cpp.o.d"
  "libzipr_vm.a"
  "libzipr_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipr_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
