# Empty dependencies file for zipr_vm.
# This may be replaced when dependencies are built.
