file(REMOVE_RECURSE
  "libzipr_analysis.a"
)
