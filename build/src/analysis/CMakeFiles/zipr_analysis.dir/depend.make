# Empty dependencies file for zipr_analysis.
# This may be replaced when dependencies are built.
