file(REMOVE_RECURSE
  "CMakeFiles/zipr_analysis.dir/disasm.cpp.o"
  "CMakeFiles/zipr_analysis.dir/disasm.cpp.o.d"
  "CMakeFiles/zipr_analysis.dir/ir_builder.cpp.o"
  "CMakeFiles/zipr_analysis.dir/ir_builder.cpp.o.d"
  "CMakeFiles/zipr_analysis.dir/pinning.cpp.o"
  "CMakeFiles/zipr_analysis.dir/pinning.cpp.o.d"
  "libzipr_analysis.a"
  "libzipr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
