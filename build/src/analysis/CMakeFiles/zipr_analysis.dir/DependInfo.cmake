
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/disasm.cpp" "src/analysis/CMakeFiles/zipr_analysis.dir/disasm.cpp.o" "gcc" "src/analysis/CMakeFiles/zipr_analysis.dir/disasm.cpp.o.d"
  "/root/repo/src/analysis/ir_builder.cpp" "src/analysis/CMakeFiles/zipr_analysis.dir/ir_builder.cpp.o" "gcc" "src/analysis/CMakeFiles/zipr_analysis.dir/ir_builder.cpp.o.d"
  "/root/repo/src/analysis/pinning.cpp" "src/analysis/CMakeFiles/zipr_analysis.dir/pinning.cpp.o" "gcc" "src/analysis/CMakeFiles/zipr_analysis.dir/pinning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/irdb/CMakeFiles/zipr_irdb.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/zipr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/zelf/CMakeFiles/zipr_zelf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/zipr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
