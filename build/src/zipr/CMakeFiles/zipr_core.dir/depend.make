# Empty dependencies file for zipr_core.
# This may be replaced when dependencies are built.
