file(REMOVE_RECURSE
  "CMakeFiles/zipr_core.dir/dollop.cpp.o"
  "CMakeFiles/zipr_core.dir/dollop.cpp.o.d"
  "CMakeFiles/zipr_core.dir/memory_space.cpp.o"
  "CMakeFiles/zipr_core.dir/memory_space.cpp.o.d"
  "CMakeFiles/zipr_core.dir/placement.cpp.o"
  "CMakeFiles/zipr_core.dir/placement.cpp.o.d"
  "CMakeFiles/zipr_core.dir/reassembler.cpp.o"
  "CMakeFiles/zipr_core.dir/reassembler.cpp.o.d"
  "CMakeFiles/zipr_core.dir/zipr.cpp.o"
  "CMakeFiles/zipr_core.dir/zipr.cpp.o.d"
  "libzipr_core.a"
  "libzipr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
