file(REMOVE_RECURSE
  "libzipr_core.a"
)
