# Empty compiler generated dependencies file for zipr_support.
# This may be replaced when dependencies are built.
