file(REMOVE_RECURSE
  "libzipr_support.a"
)
