file(REMOVE_RECURSE
  "CMakeFiles/zipr_support.dir/bytes.cpp.o"
  "CMakeFiles/zipr_support.dir/bytes.cpp.o.d"
  "CMakeFiles/zipr_support.dir/interval.cpp.o"
  "CMakeFiles/zipr_support.dir/interval.cpp.o.d"
  "CMakeFiles/zipr_support.dir/log.cpp.o"
  "CMakeFiles/zipr_support.dir/log.cpp.o.d"
  "libzipr_support.a"
  "libzipr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
