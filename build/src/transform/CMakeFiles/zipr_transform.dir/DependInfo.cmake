
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/api.cpp" "src/transform/CMakeFiles/zipr_transform.dir/api.cpp.o" "gcc" "src/transform/CMakeFiles/zipr_transform.dir/api.cpp.o.d"
  "/root/repo/src/transform/canary.cpp" "src/transform/CMakeFiles/zipr_transform.dir/canary.cpp.o" "gcc" "src/transform/CMakeFiles/zipr_transform.dir/canary.cpp.o.d"
  "/root/repo/src/transform/cfi.cpp" "src/transform/CMakeFiles/zipr_transform.dir/cfi.cpp.o" "gcc" "src/transform/CMakeFiles/zipr_transform.dir/cfi.cpp.o.d"
  "/root/repo/src/transform/mandatory.cpp" "src/transform/CMakeFiles/zipr_transform.dir/mandatory.cpp.o" "gcc" "src/transform/CMakeFiles/zipr_transform.dir/mandatory.cpp.o.d"
  "/root/repo/src/transform/null.cpp" "src/transform/CMakeFiles/zipr_transform.dir/null.cpp.o" "gcc" "src/transform/CMakeFiles/zipr_transform.dir/null.cpp.o.d"
  "/root/repo/src/transform/profile.cpp" "src/transform/CMakeFiles/zipr_transform.dir/profile.cpp.o" "gcc" "src/transform/CMakeFiles/zipr_transform.dir/profile.cpp.o.d"
  "/root/repo/src/transform/stackpad.cpp" "src/transform/CMakeFiles/zipr_transform.dir/stackpad.cpp.o" "gcc" "src/transform/CMakeFiles/zipr_transform.dir/stackpad.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/zipr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/irdb/CMakeFiles/zipr_irdb.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/zipr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/zelf/CMakeFiles/zipr_zelf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/zipr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
