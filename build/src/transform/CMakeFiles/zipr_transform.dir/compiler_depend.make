# Empty compiler generated dependencies file for zipr_transform.
# This may be replaced when dependencies are built.
