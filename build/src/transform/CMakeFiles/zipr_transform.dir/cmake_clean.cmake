file(REMOVE_RECURSE
  "CMakeFiles/zipr_transform.dir/api.cpp.o"
  "CMakeFiles/zipr_transform.dir/api.cpp.o.d"
  "CMakeFiles/zipr_transform.dir/canary.cpp.o"
  "CMakeFiles/zipr_transform.dir/canary.cpp.o.d"
  "CMakeFiles/zipr_transform.dir/cfi.cpp.o"
  "CMakeFiles/zipr_transform.dir/cfi.cpp.o.d"
  "CMakeFiles/zipr_transform.dir/mandatory.cpp.o"
  "CMakeFiles/zipr_transform.dir/mandatory.cpp.o.d"
  "CMakeFiles/zipr_transform.dir/null.cpp.o"
  "CMakeFiles/zipr_transform.dir/null.cpp.o.d"
  "CMakeFiles/zipr_transform.dir/profile.cpp.o"
  "CMakeFiles/zipr_transform.dir/profile.cpp.o.d"
  "CMakeFiles/zipr_transform.dir/stackpad.cpp.o"
  "CMakeFiles/zipr_transform.dir/stackpad.cpp.o.d"
  "libzipr_transform.a"
  "libzipr_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipr_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
