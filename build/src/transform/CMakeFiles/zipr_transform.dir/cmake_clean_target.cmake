file(REMOVE_RECURSE
  "libzipr_transform.a"
)
