file(REMOVE_RECURSE
  "libzipr_irdb.a"
)
