# Empty compiler generated dependencies file for zipr_irdb.
# This may be replaced when dependencies are built.
