file(REMOVE_RECURSE
  "CMakeFiles/zipr_irdb.dir/ir.cpp.o"
  "CMakeFiles/zipr_irdb.dir/ir.cpp.o.d"
  "CMakeFiles/zipr_irdb.dir/serialize.cpp.o"
  "CMakeFiles/zipr_irdb.dir/serialize.cpp.o.d"
  "libzipr_irdb.a"
  "libzipr_irdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipr_irdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
