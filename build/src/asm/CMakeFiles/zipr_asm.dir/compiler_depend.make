# Empty compiler generated dependencies file for zipr_asm.
# This may be replaced when dependencies are built.
