file(REMOVE_RECURSE
  "CMakeFiles/zipr_asm.dir/assembler.cpp.o"
  "CMakeFiles/zipr_asm.dir/assembler.cpp.o.d"
  "libzipr_asm.a"
  "libzipr_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipr_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
