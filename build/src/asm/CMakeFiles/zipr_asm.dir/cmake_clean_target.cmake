file(REMOVE_RECURSE
  "libzipr_asm.a"
)
