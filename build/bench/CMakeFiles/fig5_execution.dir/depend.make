# Empty dependencies file for fig5_execution.
# This may be replaced when dependencies are built.
