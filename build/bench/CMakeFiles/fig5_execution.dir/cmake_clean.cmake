file(REMOVE_RECURSE
  "CMakeFiles/fig5_execution.dir/fig5_execution.cpp.o"
  "CMakeFiles/fig5_execution.dir/fig5_execution.cpp.o.d"
  "fig5_execution"
  "fig5_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
