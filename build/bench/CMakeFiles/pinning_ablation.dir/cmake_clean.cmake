file(REMOVE_RECURSE
  "CMakeFiles/pinning_ablation.dir/pinning_ablation.cpp.o"
  "CMakeFiles/pinning_ablation.dir/pinning_ablation.cpp.o.d"
  "pinning_ablation"
  "pinning_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinning_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
