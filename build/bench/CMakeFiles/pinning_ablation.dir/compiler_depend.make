# Empty compiler generated dependencies file for pinning_ablation.
# This may be replaced when dependencies are built.
