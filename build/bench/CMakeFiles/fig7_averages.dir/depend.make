# Empty dependencies file for fig7_averages.
# This may be replaced when dependencies are built.
