file(REMOVE_RECURSE
  "CMakeFiles/fig7_averages.dir/fig7_averages.cpp.o"
  "CMakeFiles/fig7_averages.dir/fig7_averages.cpp.o.d"
  "fig7_averages"
  "fig7_averages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_averages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
