# Empty compiler generated dependencies file for fig4_filesize.
# This may be replaced when dependencies are built.
