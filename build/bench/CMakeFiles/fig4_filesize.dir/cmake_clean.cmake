file(REMOVE_RECURSE
  "CMakeFiles/fig4_filesize.dir/fig4_filesize.cpp.o"
  "CMakeFiles/fig4_filesize.dir/fig4_filesize.cpp.o.d"
  "fig4_filesize"
  "fig4_filesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_filesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
