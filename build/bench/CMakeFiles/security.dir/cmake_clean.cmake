file(REMOVE_RECURSE
  "CMakeFiles/security.dir/security.cpp.o"
  "CMakeFiles/security.dir/security.cpp.o.d"
  "security"
  "security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
