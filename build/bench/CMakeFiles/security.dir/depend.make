# Empty dependencies file for security.
# This may be replaced when dependencies are built.
