# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/zelf_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/irdb_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/zipr_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/cgc_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/link_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
