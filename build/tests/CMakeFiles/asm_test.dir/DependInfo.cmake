
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/asm_test.cpp" "tests/CMakeFiles/asm_test.dir/asm_test.cpp.o" "gcc" "tests/CMakeFiles/asm_test.dir/asm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cgc/CMakeFiles/zipr_cgc.dir/DependInfo.cmake"
  "/root/repo/build/src/zipr/CMakeFiles/zipr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/zipr_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/zipr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/irdb/CMakeFiles/zipr_irdb.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/zipr_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/zipr_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/zipr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/zelf/CMakeFiles/zipr_zelf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/zipr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
