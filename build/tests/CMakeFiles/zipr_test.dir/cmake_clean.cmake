file(REMOVE_RECURSE
  "CMakeFiles/zipr_test.dir/zipr_test.cpp.o"
  "CMakeFiles/zipr_test.dir/zipr_test.cpp.o.d"
  "zipr_test"
  "zipr_test.pdb"
  "zipr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
