# Empty compiler generated dependencies file for zipr_test.
# This may be replaced when dependencies are built.
