file(REMOVE_RECURSE
  "CMakeFiles/cgc_test.dir/cgc_test.cpp.o"
  "CMakeFiles/cgc_test.dir/cgc_test.cpp.o.d"
  "cgc_test"
  "cgc_test.pdb"
  "cgc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
