# Empty dependencies file for cgc_test.
# This may be replaced when dependencies are built.
