# Empty compiler generated dependencies file for irdb_test.
# This may be replaced when dependencies are built.
