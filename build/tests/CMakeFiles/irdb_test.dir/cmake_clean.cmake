file(REMOVE_RECURSE
  "CMakeFiles/irdb_test.dir/irdb_test.cpp.o"
  "CMakeFiles/irdb_test.dir/irdb_test.cpp.o.d"
  "irdb_test"
  "irdb_test.pdb"
  "irdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
