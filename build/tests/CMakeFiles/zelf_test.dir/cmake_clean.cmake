file(REMOVE_RECURSE
  "CMakeFiles/zelf_test.dir/zelf_test.cpp.o"
  "CMakeFiles/zelf_test.dir/zelf_test.cpp.o.d"
  "zelf_test"
  "zelf_test.pdb"
  "zelf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zelf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
