# Empty dependencies file for zelf_test.
# This may be replaced when dependencies are built.
